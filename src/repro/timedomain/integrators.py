"""Transient integrators: recursive convolution and discretized stepping.

Two interchangeable integrators advance a macromodel through time:

* :func:`recursive_convolution` works directly on the pole/residue form.
  For each pole the scalar state ``x_m' = p_m x_m + u`` has an *exact*
  exponential update under piecewise-linear input,

  .. math::

      x_m[n] = \\alpha_m x_m[n-1] + \\beta_m u[n-1] + \\gamma_m u[n],

  with ``alpha = exp(p dt)`` and ``beta``/``gamma`` the exact PWL
  quadrature weights — no truncation error beyond the PWL input model
  itself.  The batched path is vectorized over poles x ports x timestep
  *chunks*: per chunk, the forcing terms ``beta u[n-1] + gamma u[n]``
  are assembled in one broadcast, the recurrence advances with two
  in-place numpy calls per step writing straight into the chunk's state
  stack, and the residue contraction ``y_n = Re(sum_m R_m x_m[n])``
  collapses into one BLAS matmul per chunk — instead of ~6 small numpy
  calls per timestep in the naive loop.

* :func:`statespace_step` discretizes a dense :class:`StateSpace` with
  Tustin (bilinear) or ZOH and steps ``x[n] = Ad x[n-1] + B0 u[n-1] +
  B1 u[n]``, reusing one matrix factorization for the whole run and
  chunking the ``C x`` output projection into GEMMs.

:func:`closed_loop_response` embeds either integrator in a
:class:`~repro.timedomain.terminations.Termination` network
``a = Gamma b + e``.  The one-step linear feedback is solved exactly
through a precomputed ``p x p`` system each step (reflections make each
input sample depend on the same step's output, so this path is
sequential by nature).

Conventions shared by every path (and relied on by the energy
witnesses): the state at sample 0 is ``B1 u[0]`` (``gamma u[0]``), which
makes the causal simulation of any input sequence *exactly* equal to
the doubly-infinite LTI response with zero past — so a passive model
yields a contractive discrete map, to machine precision.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.statespace import StateSpace
from repro.timedomain.terminations import Termination
from repro.utils.guards import check_conditioning
from repro.utils.validation import ensure_choice, ensure_positive_float

__all__ = [
    "DISCRETIZATIONS",
    "recursive_coefficients",
    "recursive_convolution",
    "recursive_convolution_reference",
    "discretize_statespace",
    "statespace_step",
    "closed_loop_response",
]

#: State-space discretization rules :func:`statespace_step` supports.
DISCRETIZATIONS = ("tustin", "zoh")

#: Default timestep-chunk length of the batched paths.
DEFAULT_CHUNK_STEPS = 512


def _check_inputs(inputs, num_ports: int) -> np.ndarray:
    u = np.asarray(inputs, dtype=float)
    if u.ndim != 2 or u.shape[1] != num_ports:
        raise ValueError(
            f"inputs must have shape (num_steps, {num_ports}),"
            f" got {u.shape}"
        )
    if u.shape[0] < 1:
        raise ValueError("inputs must contain at least one timestep")
    return u


def recursive_coefficients(
    poles: np.ndarray, dt: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-pole update weights ``(alpha, beta, gamma)`` for PWL input.

    ``x[n] = alpha x[n-1] + beta u[n-1] + gamma u[n]`` reproduces the
    continuous state ``x' = p x + u`` exactly when ``u`` is piecewise
    linear between samples: ``alpha = exp(p dt)`` and the two input
    weights are the exact convolution integrals of the linear
    interpolant against ``exp(p (dt - tau))``.
    """
    dt = ensure_positive_float(dt, "dt")
    p = np.asarray(poles, dtype=complex)
    if p.size and np.min(np.abs(p)) == 0.0:
        raise ValueError("recursive convolution requires nonzero poles")
    x = p * dt
    alpha = np.exp(x)
    i0 = np.expm1(x) / p
    # j1 = (i0 - dt) / p cancels catastrophically when |p dt| is tiny
    # (both terms ~ dt, difference ~ dt |x| / 2) — a real regime for
    # broadband models whose pole magnitudes span many decades while dt
    # resolves the fastest pole.  Below the crossover the series
    # j1 = dt^2 (1/2 + x/6 + x^2/24 + x^3/120 + ...) is exact to
    # machine precision (truncation ~ |x|^4 / 144 relative); above it
    # the direct formula amplifies rounding by only ~2/|x|.
    small = np.abs(x) < 1e-3
    j1_direct = (i0 - dt) / np.where(small, 1.0, p)
    j1_series = dt * dt * (
        0.5 + x * (1.0 / 6.0 + x * (1.0 / 24.0 + x / 120.0))
    )
    j1 = np.where(small, j1_series, j1_direct)
    gamma = j1 / dt
    beta = i0 - gamma
    return alpha, beta, gamma


def recursive_convolution(
    model: PoleResidueModel,
    inputs,
    dt: float,
    *,
    chunk_steps: int = DEFAULT_CHUNK_STEPS,
) -> np.ndarray:
    """Exact-exponential transient response of a pole/residue model.

    Parameters
    ----------
    model:
        The :class:`PoleResidueModel` to simulate.
    inputs:
        Incident-wave samples, shape ``(num_steps, num_ports)``,
        interpreted as piecewise-linear between samples.
    dt:
        Timestep in seconds.
    chunk_steps:
        Timestep-chunk length of the batched recurrence/contraction.

    Returns
    -------
    numpy.ndarray
        Reflected-wave samples ``b``, shape ``(num_steps, num_ports)``.
    """
    if not isinstance(model, PoleResidueModel):
        raise TypeError(
            f"recursive convolution needs a PoleResidueModel,"
            f" got {type(model).__name__}"
        )
    u = _check_inputs(inputs, model.num_ports)
    alpha, beta, gamma = recursive_coefficients(model.poles, dt)
    residues = model.residues
    num_steps, p = u.shape
    m = alpha.size
    out = np.empty((num_steps, p), dtype=float)
    x = gamma[:, None] * u[0][None, :]
    out[0] = np.einsum("mj,mij->i", x, residues).real + model.d @ u[0]
    chunk = max(8, int(chunk_steps))
    alpha_col = alpha[:, None]
    d_t = model.d.T
    # Residues flattened to (p, M p) so the whole chunk's outputs come
    # from one real-projected GEMM.
    r_mat = np.transpose(residues, (1, 0, 2)).reshape(p, m * p)
    for start in range(1, num_steps, chunk):
        stop = min(num_steps, start + chunk)
        size = stop - start
        forcing = (
            beta[None, :, None] * u[start - 1 : stop - 1, None, :]
            + gamma[None, :, None] * u[start:stop, None, :]
        )
        states = np.empty((size, m, p), dtype=complex)
        cur = x
        for i in range(size):
            np.multiply(cur, alpha_col, out=states[i])
            states[i] += forcing[i]
            cur = states[i]
        x = cur.copy()
        out[start:stop] = (
            states.reshape(size, m * p) @ r_mat.T
        ).real + u[start:stop] @ d_t
    return out


def recursive_convolution_reference(
    model: PoleResidueModel, inputs, dt: float
) -> np.ndarray:
    """Naive per-step loop computing the same response as
    :func:`recursive_convolution` — the pre-chunking implementation,
    kept as the benchmark baseline and the equivalence-test oracle."""
    if not isinstance(model, PoleResidueModel):
        raise TypeError(
            f"recursive convolution needs a PoleResidueModel,"
            f" got {type(model).__name__}"
        )
    u = _check_inputs(inputs, model.num_ports)
    alpha, beta, gamma = recursive_coefficients(model.poles, dt)
    residues = model.residues
    num_steps, p = u.shape
    out = np.empty((num_steps, p), dtype=float)
    x = gamma[:, None] * u[0][None, :]
    out[0] = np.einsum("mj,mij->i", x, residues).real + model.d @ u[0]
    for n in range(1, num_steps):
        x = (
            alpha[:, None] * x
            + beta[:, None] * u[n - 1][None, :]
            + gamma[:, None] * u[n][None, :]
        )
        out[n] = np.einsum("mj,mij->i", x, residues).real + model.d @ u[n]
    return out


# ---------------------------------------------------------------------------
# Discretized state-space stepping
# ---------------------------------------------------------------------------


def discretize_statespace(
    ss: StateSpace, dt: float, *, method: str = "tustin"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Discretize ``x' = A x + B u`` into ``x[n] = Ad x[n-1] + B0 u[n-1] + B1 u[n]``.

    ``tustin`` is the bilinear (trapezoidal) rule — one dense solve
    against ``I - A dt/2`` shared by all three matrices, A-stable,
    second-order accurate.  ``zoh`` holds the input over each step and
    uses the exact matrix exponential (via the standard augmented-matrix
    construction), so ``B1 = 0``.
    """
    ensure_choice(method, "discretization", DISCRETIZATIONS)
    dt = ensure_positive_float(dt, "dt")
    n = ss.order
    if method == "tustin":
        m = np.eye(n) - 0.5 * dt * ss.a
        # A near-singular trapezoidal matrix (dt at a system pole's
        # timescale) would make the solve amplify noise into the whole
        # trajectory — diagnose it instead of simulating garbage.
        check_conditioning(
            m, stage="simulate", what="trapezoidal system matrix I - A*dt/2"
        )
        rhs = np.concatenate(
            [np.eye(n) + 0.5 * dt * ss.a, 0.5 * dt * ss.b], axis=1
        )
        sol = np.linalg.solve(m, rhs)
        return sol[:, :n], sol[:, n:], sol[:, n:].copy()
    from scipy.linalg import expm

    p = ss.b.shape[1]
    aug = np.zeros((n + p, n + p))
    aug[:n, :n] = ss.a * dt
    aug[:n, n:] = ss.b * dt
    phi = expm(aug)
    return phi[:n, :n], phi[:n, n:], np.zeros((n, p))


def statespace_step(
    ss: StateSpace,
    inputs,
    dt: float,
    *,
    method: str = "tustin",
    chunk_steps: int = DEFAULT_CHUNK_STEPS,
) -> np.ndarray:
    """Transient response of a dense state-space model.

    Same contract as :func:`recursive_convolution`, but integrating the
    dense realization with the chosen discretization (``"tustin"`` or
    ``"zoh"``); the state recurrence reuses one dense
    factorization/exponential for the whole run and the output
    projection runs as chunked GEMMs.
    """
    if not isinstance(ss, StateSpace):
        raise TypeError(f"expected StateSpace, got {type(ss).__name__}")
    u = _check_inputs(inputs, ss.num_ports)
    ad, b0, b1 = discretize_statespace(ss, dt, method=method)
    c, d = ss.c, ss.d
    num_steps, p = u.shape
    out = np.empty((num_steps, p), dtype=float)
    x = b1 @ u[0]
    out[0] = c @ x + d @ u[0]
    chunk = max(8, int(chunk_steps))
    states = np.empty((chunk, ss.order))
    for start in range(1, num_steps, chunk):
        stop = min(num_steps, start + chunk)
        for i, n in enumerate(range(start, stop)):
            x = ad @ x + b0 @ u[n - 1] + b1 @ u[n]
            states[i] = x
        out[start:stop] = states[: stop - start] @ c.T + u[start:stop] @ d.T
    return out


# ---------------------------------------------------------------------------
# Terminated (closed-loop) stepping
# ---------------------------------------------------------------------------


def _feedback_matrix(gamma_refl: np.ndarray, coupling: np.ndarray) -> np.ndarray:
    """Inverse of ``I - diag(gamma_refl) @ coupling`` (the port loop)."""
    m = np.eye(coupling.shape[0]) - gamma_refl[:, None] * coupling
    try:
        inv = np.linalg.inv(m)
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "the termination loop is singular (reflection coefficients"
            " resonate with the model's direct coupling); perturb the"
            " termination resistances"
        ) from exc
    return inv


def closed_loop_response(
    model: Union[PoleResidueModel, StateSpace],
    sources,
    dt: float,
    termination: Termination,
    *,
    method: str = "tustin",
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate the macromodel embedded in a termination network.

    Solves the per-step feedback ``a[n] = Gamma b[n] + e[n]`` exactly:
    substituting the one-step update makes the loop linear in ``a[n]``,
    so each step applies one precomputed ``p x p`` inverse.  A matched
    termination short-circuits to the open-loop batched integrators.

    Parameters
    ----------
    model:
        A :class:`PoleResidueModel` (stepped by recursive convolution)
        or a dense :class:`StateSpace` (stepped by ``method``).
    sources:
        Source-wave samples ``e``, shape ``(num_steps, num_ports)``.
    dt:
        Timestep in seconds.
    termination:
        The closing network.
    method:
        Discretization of the state-space path.

    Returns
    -------
    (incident, reflected):
        The solved port waves ``a`` and ``b``, each
        ``(num_steps, num_ports)`` — exactly what the energy monitor
        needs to witness passivity.
    """
    is_pr = isinstance(model, PoleResidueModel)
    if not is_pr and not isinstance(model, StateSpace):
        raise TypeError(
            f"expected PoleResidueModel or StateSpace, got {type(model).__name__}"
        )
    e = _check_inputs(sources, model.num_ports)
    if termination.is_matched:
        if is_pr:
            return e, recursive_convolution(model, e, dt)
        return e, statespace_step(model, e, dt, method=method)
    gamma_refl = termination.gamma(model.num_ports)
    num_steps, p = e.shape
    incident = np.empty((num_steps, p), dtype=float)
    reflected = np.empty((num_steps, p), dtype=float)
    if is_pr:
        alpha, beta, gamma = recursive_coefficients(model.poles, dt)
        residues = model.residues
        coupling = model.d + np.einsum("m,mij->ij", gamma, residues).real
        loop_inv = _feedback_matrix(gamma_refl, coupling)
        x = np.zeros((alpha.size, p), dtype=complex)
        a_prev = np.zeros(p)
        for n in range(num_steps):
            if n:
                x_part = alpha[:, None] * x + beta[:, None] * a_prev[None, :]
            else:
                x_part = np.zeros_like(x)
            h = np.einsum("mj,mij->i", x_part, residues).real
            a_n = loop_inv @ (gamma_refl * h + e[n])
            x = x_part + gamma[:, None] * a_n[None, :]
            incident[n] = a_n
            reflected[n] = h + coupling @ a_n
            a_prev = a_n
        return incident, reflected
    ad, b0, b1 = discretize_statespace(model, dt, method=method)
    c, d = model.c, model.d
    coupling = d + c @ b1
    loop_inv = _feedback_matrix(gamma_refl, coupling)
    x = np.zeros(model.order)
    a_prev = np.zeros(p)
    for n in range(num_steps):
        x_part = ad @ x + b0 @ a_prev if n else np.zeros(model.order)
        h = c @ x_part
        a_n = loop_inv @ (gamma_refl * h + e[n])
        x = x_part + b1 @ a_n
        incident[n] = a_n
        reflected[n] = h + coupling @ a_n
        a_prev = a_n
    return incident, reflected
