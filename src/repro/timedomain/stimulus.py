"""Port excitation library for transient simulation.

A :class:`Stimulus` describes the incident waveform driven into the
macromodel ports — fully by value (kind + parameters + seed), so a
stimulus can cross process boundaries, enter content-addressed cache
keys, and round-trip through JSON exactly.  Five kinds cover the
validation scenarios:

* ``impulse`` — a single nonzero sample (the FFT cross-check input);
* ``step`` — a held level after the delay;
* ``pulse`` — a trapezoid (rise / hold / fall in whole steps), the
  classic signal-integrity excitation;
* ``prbs`` — a seeded pseudo-random ±A bit pattern held for
  ``bit_steps`` samples per bit (broadband energy content, reproducible
  via :class:`repro.utils.rng.RandomStream`);
* ``tone`` — a steady sinusoid, optionally with per-port complex
  weights so the input can align with a singular vector of ``H(j w)``
  (see :func:`worst_tone`).

Every waveform starts with at least one zero sample
(``delay_steps >= 1``).  The integrators treat sample sequences as
piecewise-linear input; a zero first sample makes the causal simulation
exactly equal to the doubly-infinite LTI response, which the
energy-based passivity witnesses rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RandomStream
from repro.utils.serialization import (
    complex_array_from_jsonable,
    to_jsonable,
)
from repro.utils.validation import (
    ensure_choice,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["STIMULUS_KINDS", "Stimulus", "worst_tone"]

#: Stimulus kinds the library knows how to synthesize.
STIMULUS_KINDS = ("impulse", "step", "pulse", "prbs", "tone")


@dataclass(frozen=True)
class Stimulus:
    """One port-excitation specification (immutable, JSON-serializable).

    Parameters
    ----------
    kind:
        One of :data:`STIMULUS_KINDS`.
    amplitude:
        Peak level of the waveform.
    port:
        Port index the waveform drives; ``None`` drives every port with
        the same waveform (``tone`` with ``weights`` ignores this).
    delay_steps:
        Leading zero samples (at least 1 — see the module docstring).
    rise_steps, hold_steps, fall_steps:
        Trapezoid shape of the ``pulse`` kind, in whole steps.
    bit_steps, seed:
        Bit hold length and root seed of the ``prbs`` pattern.
    freq:
        Angular frequency (rad/s) of the ``tone`` kind.
    weights:
        Optional per-port complex weights of the ``tone`` kind: port j
        receives ``amplitude * Re(weights[j] * exp(i freq t))``.
    """

    kind: str
    amplitude: float = 1.0
    port: Optional[int] = None
    delay_steps: int = 1
    rise_steps: int = 8
    hold_steps: int = 32
    fall_steps: int = 8
    bit_steps: int = 8
    seed: int = 0
    freq: float = 1.0
    weights: Optional[Tuple[complex, ...]] = None

    def __post_init__(self):
        ensure_choice(self.kind, "stimulus kind", STIMULUS_KINDS)
        ensure_positive_float(self.amplitude, "amplitude")
        if self.delay_steps < 1:
            raise ValueError(
                f"delay_steps must be >= 1 (the first sample must be zero"
                f" for the causal start to match the LTI response),"
                f" got {self.delay_steps}"
            )
        if self.port is not None and self.port < 0:
            raise ValueError(f"port must be >= 0, got {self.port}")
        if self.kind == "pulse":
            ensure_positive_int(self.rise_steps, "rise_steps")
            ensure_positive_int(self.fall_steps, "fall_steps")
            if self.hold_steps < 0:
                raise ValueError(
                    f"hold_steps must be >= 0, got {self.hold_steps}"
                )
        if self.kind == "prbs":
            ensure_positive_int(self.bit_steps, "bit_steps")
        if self.kind == "tone":
            ensure_positive_float(self.freq, "freq")
        if self.weights is not None:
            if self.kind != "tone":
                raise ValueError("weights apply to the 'tone' kind only")
            object.__setattr__(
                self, "weights", tuple(complex(w) for w in self.weights)
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def impulse(cls, *, amplitude: float = 1.0, **kwargs) -> "Stimulus":
        """A single nonzero sample of the given amplitude."""
        return cls(kind="impulse", amplitude=amplitude, **kwargs)

    @classmethod
    def step(cls, *, amplitude: float = 1.0, **kwargs) -> "Stimulus":
        """A held level starting after the delay."""
        return cls(kind="step", amplitude=amplitude, **kwargs)

    @classmethod
    def pulse(
        cls,
        *,
        amplitude: float = 1.0,
        rise_steps: int = 8,
        hold_steps: int = 32,
        fall_steps: int = 8,
        **kwargs,
    ) -> "Stimulus":
        """A trapezoidal pulse (rise / hold / fall in whole steps)."""
        return cls(
            kind="pulse",
            amplitude=amplitude,
            rise_steps=rise_steps,
            hold_steps=hold_steps,
            fall_steps=fall_steps,
            **kwargs,
        )

    @classmethod
    def prbs(
        cls, *, amplitude: float = 1.0, bit_steps: int = 8, seed: int = 0, **kwargs
    ) -> "Stimulus":
        """A seeded pseudo-random ±amplitude bit pattern."""
        return cls(
            kind="prbs",
            amplitude=amplitude,
            bit_steps=bit_steps,
            seed=seed,
            **kwargs,
        )

    @classmethod
    def tone(
        cls,
        freq: float,
        *,
        amplitude: float = 1.0,
        weights=None,
        **kwargs,
    ) -> "Stimulus":
        """A steady sinusoid at ``freq`` rad/s."""
        if weights is not None:
            weights = tuple(complex(w) for w in weights)
        return cls(
            kind="tone",
            amplitude=amplitude,
            freq=freq,
            weights=weights,
            **kwargs,
        )

    # -- synthesis ----------------------------------------------------------

    def _scalar_waveform(self, num_steps: int, dt: float) -> np.ndarray:
        """The (T,) base waveform before port placement."""
        u = np.zeros(num_steps, dtype=float)
        d = self.delay_steps
        if d >= num_steps:
            return u
        if self.kind == "impulse":
            u[d] = self.amplitude
        elif self.kind == "step":
            u[d:] = self.amplitude
        elif self.kind == "pulse":
            ramp_up = np.linspace(0.0, 1.0, self.rise_steps + 1)[1:]
            ramp_down = np.linspace(1.0, 0.0, self.fall_steps + 1)[1:]
            shape = np.concatenate(
                [ramp_up, np.ones(self.hold_steps), ramp_down]
            )
            end = min(num_steps, d + shape.size)
            u[d:end] = self.amplitude * shape[: end - d]
        elif self.kind == "prbs":
            rng = RandomStream(self.seed).generator
            num_bits = -(-(num_steps - d) // self.bit_steps)
            bits = 2.0 * rng.integers(0, 2, size=num_bits) - 1.0
            u[d:] = self.amplitude * np.repeat(bits, self.bit_steps)[: num_steps - d]
        else:  # tone
            t = (np.arange(d, num_steps) - d) * dt
            u[d:] = self.amplitude * np.sin(self.freq * t)
        return u

    def waveforms(self, num_steps: int, dt: float, num_ports: int) -> np.ndarray:
        """Synthesize the ``(num_steps, num_ports)`` port waveform matrix."""
        num_steps = ensure_positive_int(num_steps, "num_steps")
        dt = ensure_positive_float(dt, "dt")
        num_ports = ensure_positive_int(num_ports, "num_ports")
        if self.kind == "tone" and self.weights is not None:
            if len(self.weights) != num_ports:
                raise ValueError(
                    f"stimulus carries {len(self.weights)} port weights but"
                    f" the model has {num_ports} ports"
                )
            d = self.delay_steps
            out = np.zeros((num_steps, num_ports), dtype=float)
            if d < num_steps:
                t = (np.arange(d, num_steps) - d) * dt
                phasor = np.exp(1j * self.freq * t)
                w = np.asarray(self.weights, dtype=complex)
                out[d:] = self.amplitude * (phasor[:, None] * w[None, :]).real
            return out
        base = self._scalar_waveform(num_steps, dt)
        out = np.zeros((num_steps, num_ports), dtype=float)
        if self.port is None:
            out[:] = base[:, None]
        else:
            if self.port >= num_ports:
                raise ValueError(
                    f"stimulus drives port {self.port} but the model has"
                    f" {num_ports} ports"
                )
            out[:, self.port] = base
        return out

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable description (exact :meth:`from_dict` inverse)."""
        payload = {
            "kind": self.kind,
            "amplitude": float(self.amplitude),
            "port": self.port,
            "delay_steps": int(self.delay_steps),
        }
        if self.kind == "pulse":
            payload["rise_steps"] = int(self.rise_steps)
            payload["hold_steps"] = int(self.hold_steps)
            payload["fall_steps"] = int(self.fall_steps)
        if self.kind == "prbs":
            payload["bit_steps"] = int(self.bit_steps)
            payload["seed"] = int(self.seed)
        if self.kind == "tone":
            payload["freq"] = float(self.freq)
            payload["weights"] = (
                to_jsonable(np.asarray(self.weights))
                if self.weights is not None
                else None
            )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Stimulus":
        """Rebuild a stimulus from a :meth:`to_dict` payload."""
        kwargs = dict(payload)
        weights = kwargs.pop("weights", None)
        if weights is not None:
            weights = tuple(complex_array_from_jsonable(weights).tolist())
        return cls(weights=weights, **kwargs)

    def __repr__(self) -> str:
        target = "all ports" if self.port is None else f"port {self.port}"
        if self.kind == "tone" and self.weights is not None:
            target = "weighted ports"
        return f"Stimulus({self.kind}, A={self.amplitude:g}, {target})"


def worst_tone(
    model, omega: float, *, amplitude: float = 1.0, delay_steps: int = 1
) -> Stimulus:
    """Tone aligned with the top right singular vector of ``H(j omega)``.

    Driving the ports with the (complex) components of the right
    singular vector makes the steady-state energy gain approach
    ``sigma_max(H(j omega))^2`` — the sharpest time-domain witness of a
    passivity violation at a known peak frequency (take ``omega`` from
    ``PassivityReport.bands[k].peak_freq``).
    """
    omega = ensure_positive_float(omega, "omega")
    h = np.asarray(model.transfer(1j * omega))
    _u, _s, vh = np.linalg.svd(h)
    v = np.conj(vh[0])
    return Stimulus.tone(
        omega, amplitude=amplitude, weights=tuple(v), delay_steps=delay_steps
    )
