"""Energy monitor: cumulative port energy and passivity witnesses.

In the scattering representation a p-port is passive exactly when it
never returns more wave energy than it receives: for every square-
integrable incident wave ``a``,

.. math::

    \\int \\|b(t)\\|^2 \\, dt \\;\\le\\; \\int \\|a(t)\\|^2 \\, dt .

The :class:`EnergyReport` measures the discrete version of this
inequality over a simulation window — cumulative incident and reflected
energy, per port and total — and renders the verdict as a machine-
checkable witness: ``energy_gain > 1`` on a simulated stimulus proves
the model is *not* passive (it manufactured energy), while the
enforcement pipeline's promise is that repaired models stay at
``energy_gain <= 1 + tol`` for every stimulus.

The witness is sound because the recursive-convolution integrator is an
exact LTI map whose discrete transfer function is a ``sinc^2``-weighted
convex combination of ``H(j w)`` along the imaginary axis (see
:mod:`repro.timedomain.fft`): a model with ``sigma_max <= 1`` everywhere
therefore yields a contractive discrete system, to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.serialization import (
    float_array_from_jsonable,
    float_from_jsonable,
    to_jsonable,
)

__all__ = ["EnergyReport", "energy_report"]

#: Default slack above unit gain tolerated before a model is flagged.
DEFAULT_ENERGY_TOL = 1e-8


@dataclass(frozen=True)
class EnergyReport:
    """Cumulative port-energy balance of one simulated stimulus.

    Attributes
    ----------
    input_energy, output_energy:
        Total incident / reflected energy over the window,
        ``dt * sum_n ||a_n||^2`` (resp. ``b``).
    energy_gain:
        ``output_energy / input_energy`` — the passivity witness.
        Greater than ``1 + tol`` means the model amplified its
        excitation: a certificate of non-passivity for this stimulus.
    port_input, port_output:
        Per-port energy breakdown (tuples of length p).
    peak_output:
        Largest instantaneous ``||b_n||`` — a quick blow-up indicator
        for unstable embeddings.
    passive:
        ``energy_gain <= 1 + tol``.  This is a *per-stimulus* verdict:
        gain above one disproves passivity, gain below one on a single
        stimulus does not prove it (that is the Hamiltonian test's job).
    tol:
        Slack used for the verdict.
    num_steps, dt:
        The window the energies were accumulated over.
    """

    input_energy: float
    output_energy: float
    energy_gain: float
    port_input: Tuple[float, ...]
    port_output: Tuple[float, ...]
    peak_output: float
    passive: bool
    tol: float
    num_steps: int
    dt: float

    @property
    def num_ports(self) -> int:
        """Number of ports metered."""
        return len(self.port_input)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "passive response" if self.passive else "ENERGY GAIN"
        return (
            f"{verdict}: gain {self.energy_gain:.9f}"
            f" (in {self.input_energy:.6g}, out {self.output_energy:.6g},"
            f" {self.num_steps} steps of {self.dt:g}s)"
        )

    def to_dict(self) -> dict:
        """JSON-serializable dictionary (exact :meth:`from_dict` inverse)."""
        return to_jsonable(
            {
                "input_energy": float(self.input_energy),
                "output_energy": float(self.output_energy),
                "energy_gain": float(self.energy_gain),
                "port_input": list(self.port_input),
                "port_output": list(self.port_output),
                "peak_output": float(self.peak_output),
                "passive": bool(self.passive),
                "tol": float(self.tol),
                "num_steps": int(self.num_steps),
                "dt": float(self.dt),
            }
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "EnergyReport":
        """Rebuild a report from a :meth:`to_dict` payload."""
        return cls(
            input_energy=float_from_jsonable(payload["input_energy"]),
            output_energy=float_from_jsonable(payload["output_energy"]),
            energy_gain=float_from_jsonable(payload["energy_gain"]),
            port_input=tuple(
                float_array_from_jsonable(payload["port_input"]).tolist()
            ),
            port_output=tuple(
                float_array_from_jsonable(payload["port_output"]).tolist()
            ),
            peak_output=float_from_jsonable(payload["peak_output"]),
            passive=bool(payload["passive"]),
            tol=float_from_jsonable(payload["tol"]),
            num_steps=int(payload["num_steps"]),
            dt=float_from_jsonable(payload["dt"]),
        )


def energy_report(
    incident: np.ndarray,
    reflected: np.ndarray,
    dt: float,
    *,
    tol: float = DEFAULT_ENERGY_TOL,
) -> EnergyReport:
    """Meter the energy balance of one simulated wave pair.

    Parameters
    ----------
    incident, reflected:
        Port-wave samples ``a`` and ``b``, each ``(num_steps, p)``.
    dt:
        Timestep the simulation used.
    tol:
        Slack above unit gain before the stimulus is flagged.
    """
    a = np.asarray(incident, dtype=float)
    b = np.asarray(reflected, dtype=float)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError(
            f"incident and reflected waves must share a (num_steps, p)"
            f" shape, got {a.shape} and {b.shape}"
        )
    if tol < 0.0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    port_in = dt * np.sum(a * a, axis=0)
    port_out = dt * np.sum(b * b, axis=0)
    e_in = float(port_in.sum())
    e_out = float(port_out.sum())
    if e_in > 0.0:
        gain = e_out / e_in
    else:
        gain = 0.0 if e_out == 0.0 else float("inf")
    return EnergyReport(
        input_energy=e_in,
        output_energy=e_out,
        energy_gain=float(gain),
        port_input=tuple(float(x) for x in port_in),
        port_output=tuple(float(x) for x in port_out),
        peak_output=float(np.sqrt(np.max(np.sum(b * b, axis=1)))) if b.size else 0.0,
        passive=bool(gain <= 1.0 + tol),
        tol=float(tol),
        num_steps=int(a.shape[0]),
        dt=float(dt),
    )
