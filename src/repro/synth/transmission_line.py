"""Physics-flavoured synthetic workloads: lossy transmission-line models.

The paper's test cases are packaging interconnects — electrically long
structures whose rational approximations have regularly spaced resonances
(the standing-wave pattern of a line of delay ``T``: resonances near
``w_k ~ k * pi / T``).  This generator produces macromodels with exactly
that comb structure, a more faithful substitute for the industrial cases
than fully random pole placement, and a stress test for the scheduler
(evenly spaced eigenvalue clusters along the whole band).

The model is built directly in pole/residue form:

* a resonance comb ``w_k = k * dw`` with per-resonance damping derived
  from a loss tangent;
* residues shaped like traveling-wave coupling: alternating signs between
  the near-end/far-end port blocks (the ``(-1)^k`` pattern of an ideal
  line's modal expansion);
* optional random perturbation so that no two cases are identical.
"""

from __future__ import annotations

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.synth.generator import (
    _random_direct_term,
    _scaling_grid,
    scale_to_sigma_target,
)
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_positive_float, ensure_positive_int

__all__ = ["transmission_line_model"]


def transmission_line_model(
    num_resonances: int,
    num_ports: int,
    *,
    delay: float = 3.0,
    loss_tangent: float = 0.01,
    seed=None,
    coupling_decay: float = 0.6,
    jitter: float = 0.02,
    d_norm: float = 0.1,
    sigma_target: Optional[float] = 1.02,
    grid_points: int = 400,
) -> PoleResidueModel:
    """Build a transmission-line-like rational macromodel.

    Parameters
    ----------
    num_resonances:
        Number of resonant pairs in the comb (model order is
        ``2 * num_resonances``).
    num_ports:
        Port count ``p``.
    delay:
        One-way delay ``T``; the comb spacing is ``pi / T``.
    loss_tangent:
        Relative damping of each resonance (``Re p = -loss * w0``),
        growing mildly with frequency like conductor/dielectric loss.
    seed:
        Randomness for the residue perturbation.
    coupling_decay:
        Geometric decay of the coupling between non-adjacent ports (a
        line couples neighbours strongest).
    jitter:
        Relative random perturbation of the comb frequencies (real lines
        are never perfectly periodic).
    d_norm:
        ``sigma_max`` of the direct term.
    sigma_target:
        Peak singular value after rescaling (None skips).
    grid_points:
        Scaling-grid density.

    Returns
    -------
    PoleResidueModel
        Strictly stable, conjugate-symmetric, near-passive model with a
        resonance comb spanning ``[dw, num_resonances * dw]``.
    """
    ensure_positive_int(num_resonances, "num_resonances")
    ensure_positive_int(num_ports, "num_ports")
    ensure_positive_float(delay, "delay")
    rng = as_generator(seed)

    dw = np.pi / delay
    k = np.arange(1, num_resonances + 1, dtype=float)
    w0 = k * dw * (1.0 + jitter * rng.standard_normal(num_resonances))
    w0 = np.abs(w0) + 1e-6
    # Loss grows ~sqrt(f) (skin effect) on top of the dielectric floor.
    damping = loss_tangent * w0 * (0.5 + 0.5 * np.sqrt(k / k[-1]))
    pair_poles = -damping + 1j * w0

    # Port-coupling template: strongest on/near the diagonal.
    idx = np.arange(num_ports)
    coupling = coupling_decay ** np.abs(idx[:, None] - idx[None, :])

    residues = np.zeros((2 * num_resonances, num_ports, num_ports), dtype=complex)
    poles = np.zeros(2 * num_resonances, dtype=complex)
    for m in range(num_resonances):
        # Traveling-wave sign alternation plus a mild random rotation.
        sign = -1.0 if m % 2 else 1.0
        base = sign * coupling
        perturb = 0.15 * rng.standard_normal((num_ports, num_ports))
        phase = 1j * 0.1 * rng.standard_normal((num_ports, num_ports))
        block = (base * (1.0 + perturb) + phase) * damping[m]
        poles[2 * m] = pair_poles[m]
        poles[2 * m + 1] = np.conj(pair_poles[m])
        residues[2 * m] = block
        residues[2 * m + 1] = np.conj(block)

    d = _random_direct_term(rng, num_ports, d_norm)
    model = PoleResidueModel(poles, residues, d)
    if sigma_target is not None:
        grid = _scaling_grid(poles, (float(w0.min()), float(w0.max())), grid_points)
        responses = model.frequency_response(grid)
        s = scale_to_sigma_target(d, responses, sigma_target)
        model = PoleResidueModel(poles, residues * s, d)
    return model
