"""Random near-passive macromodel generation.

Models are built the way rational fitting would produce them: strictly
stable pole sets (a few real poles plus resonant complex pairs spread over
a frequency band), random residue matrices, and a small direct term with
``sigma(D) < 1``.  The overall response is then rescaled so that the peak
singular value over a dense frequency grid hits a prescribed target —
slightly below 1 for passive cases, slightly above for violating cases —
which controls whether and roughly how many unit-threshold crossings (and
hence imaginary Hamiltonian eigenvalues) the model has.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoColumn, SimoRealization
from repro.utils.rng import as_generator
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "random_pole_set",
    "random_macromodel",
    "random_simo_macromodel",
    "scale_to_sigma_target",
    "peak_singular_value",
]


def random_pole_set(
    num_poles: int,
    rng,
    *,
    band: Tuple[float, float] = (0.5, 10.0),
    real_fraction: float = 0.15,
    q_range: Tuple[float, float] = (5.0, 80.0),
) -> np.ndarray:
    """Draw a strictly stable, conjugate-complete pole set.

    Parameters
    ----------
    num_poles:
        Total pole count (real poles + both members of each pair).
    rng:
        ``numpy.random.Generator`` or seed-like.
    band:
        Frequency band ``(w_lo, w_hi)`` for the resonant frequencies of
        complex pairs (and the magnitude range of real poles).
    real_fraction:
        Approximate fraction of poles that are real.
    q_range:
        Quality-factor range; the damping of a pair at ``w0`` is
        ``w0 / (2 Q)``, so high Q means sharp resonances.

    Returns
    -------
    numpy.ndarray
        Complex pole array: real poles first, then ``(p, conj(p))`` pairs.
    """
    num_poles = ensure_positive_int(num_poles, "num_poles")
    rng = as_generator(rng)
    w_lo, w_hi = band
    if not 0.0 < w_lo < w_hi:
        raise ValueError(f"band must satisfy 0 < w_lo < w_hi, got {band}")
    num_real = int(round(real_fraction * num_poles))
    # Pairs need an even remainder; move one pole to the real set if not.
    if (num_poles - num_real) % 2:
        num_real += 1
    num_pairs = (num_poles - num_real) // 2

    real_poles = -np.exp(
        rng.uniform(np.log(w_lo), np.log(w_hi), size=num_real)
    )
    w0 = np.exp(rng.uniform(np.log(w_lo), np.log(w_hi), size=num_pairs))
    q = rng.uniform(q_range[0], q_range[1], size=num_pairs)
    damping = w0 / (2.0 * q)
    pairs = -damping + 1j * w0

    poles = np.empty(num_real + 2 * num_pairs, dtype=complex)
    poles[:num_real] = real_poles
    poles[num_real::2] = pairs
    poles[num_real + 1 :: 2] = np.conj(pairs)
    return poles


def _random_residues(rng, poles: np.ndarray, p: int) -> np.ndarray:
    """Random conjugate-symmetric residue matrices, one per pole."""
    m = poles.size
    residues = np.zeros((m, p, p), dtype=complex)
    handled = np.zeros(m, dtype=bool)
    for i in range(m):
        if handled[i]:
            continue
        pole = poles[i]
        if abs(pole.imag) <= 1e-12 * max(1.0, abs(pole)):
            residues[i] = rng.standard_normal((p, p))
            handled[i] = True
            continue
        # Locate the conjugate partner.
        j = int(np.argmin(np.where(handled, np.inf, np.abs(poles - np.conj(pole)))))
        r = rng.standard_normal((p, p)) + 1j * rng.standard_normal((p, p))
        residues[i] = r
        residues[j] = np.conj(r)
        handled[i] = handled[j] = True
    # Normalize magnitude so the response scale is O(1) before retargeting.
    residues /= np.sqrt(m)
    return residues


def _random_direct_term(rng, p: int, d_norm: float) -> np.ndarray:
    """Random direct term with ``sigma_max(D) == d_norm`` exactly."""
    d = rng.standard_normal((p, p))
    norm = np.linalg.norm(d, 2)
    if norm == 0.0:
        return np.zeros((p, p))
    return d * (d_norm / norm)


def peak_singular_value(
    responses: np.ndarray,
) -> float:
    """Max singular value over a stack of transfer samples ``(K, p, p)``."""
    responses = np.asarray(responses)
    if responses.size == 0:
        return 0.0
    return float(np.linalg.svd(responses, compute_uv=False).max())


def scale_to_sigma_target(
    d: np.ndarray,
    responses: np.ndarray,
    target: float,
    *,
    iterations: int = 40,
) -> float:
    """Find a residue scale ``s`` with ``max sigma(D + s (H_k - D)) ~ target``.

    ``responses`` are grid samples of the unscaled model; scaling residues
    by ``s`` turns each sample into ``D + s (H_k - D)``.  The peak singular
    value is monotone non-decreasing in ``s`` over the relevant range, so
    a log-bisection converges quickly.

    Returns
    -------
    float
        The scale factor to apply to all residues.
    """
    target = ensure_positive_float(target, "target")
    d = np.asarray(d, dtype=float)
    deltas = np.asarray(responses) - d[None]
    d_norm = float(np.linalg.norm(d, 2)) if d.size else 0.0
    if target <= d_norm:
        raise ValueError(
            f"sigma target ({target}) must exceed sigma(D) ({d_norm:.3f})"
        )

    def peak(s: float) -> float:
        return peak_singular_value(d[None] + s * deltas)

    lo, hi = 1e-6, 1.0
    # Expand the bracket until peak(hi) >= target.
    for _ in range(60):
        if peak(hi) >= target:
            break
        hi *= 2.0
    else:
        raise RuntimeError("could not bracket the sigma target")
    for _ in range(iterations):
        mid = np.sqrt(lo * hi)
        if peak(mid) >= target:
            hi = mid
        else:
            lo = mid
    return float(np.sqrt(lo * hi))


def _scaling_grid(
    poles: np.ndarray, band: Tuple[float, float], points: int
) -> np.ndarray:
    """Frequency grid for peak-singular-value scaling.

    A uniform sweep alone misses high-Q resonances (peak width ``~ w0/Q``
    can be far below the grid spacing), so the grid is the union of a
    coarse linear sweep and a cluster of samples around every resonant
    frequency: ``w0 + k * damping`` for small ``k``.
    """
    w_lo, w_hi = band
    base = np.linspace(0.0, 1.3 * w_hi, points)
    poles = np.asarray(poles, dtype=complex)
    resonant = poles[poles.imag > 0]
    clusters = []
    if resonant.size:
        w0 = resonant.imag
        damping = np.abs(resonant.real)
        for k in (-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0):
            clusters.append(w0 + k * damping)
    grid = np.concatenate([base] + clusters) if clusters else base
    grid = np.unique(grid[grid >= 0.0])
    return grid


def random_macromodel(
    order_per_column: int,
    num_ports: int,
    *,
    seed=None,
    band: Tuple[float, float] = (0.5, 10.0),
    real_fraction: float = 0.15,
    q_range: Tuple[float, float] = (5.0, 80.0),
    d_norm: float = 0.1,
    sigma_target: Optional[float] = 1.05,
    grid_points: int = 300,
) -> PoleResidueModel:
    """Random common-pole macromodel (the Vector-Fitting-shaped case).

    Parameters
    ----------
    order_per_column:
        Number of poles ``M`` shared by all columns; the realization order
        is ``num_ports * M``.
    num_ports:
        Port count ``p``.
    seed:
        Seed-like for reproducibility.
    band, real_fraction, q_range:
        Pole-set parameters (see :func:`random_pole_set`).
    d_norm:
        Exact ``sigma_max`` of the direct term (must be < 1 and below
        ``sigma_target``).
    sigma_target:
        Peak singular value over the sampling grid after rescaling;
        ``< 1`` gives a (sampled-)passive model, ``> 1`` a violating one.
        ``None`` skips rescaling.
    grid_points:
        Sampling-grid density for the rescaling step.

    Returns
    -------
    PoleResidueModel
    """
    order_per_column = ensure_positive_int(order_per_column, "order_per_column")
    num_ports = ensure_positive_int(num_ports, "num_ports")
    ensure_in_range(d_norm, "d_norm", 0.0, 0.999)
    rng = as_generator(seed)
    poles = random_pole_set(
        order_per_column, rng, band=band, real_fraction=real_fraction, q_range=q_range
    )
    residues = _random_residues(rng, poles, num_ports)
    d = _random_direct_term(rng, num_ports, d_norm)
    model = PoleResidueModel(poles, residues, d)
    if sigma_target is not None:
        grid = _scaling_grid(poles, band, grid_points)
        responses = model.frequency_response(grid)
        s = scale_to_sigma_target(d, responses, sigma_target)
        model = PoleResidueModel(poles, residues * s, d)
    return model


def random_simo_macromodel(
    order: int,
    num_ports: int,
    *,
    seed=None,
    band: Tuple[float, float] = (0.5, 10.0),
    real_fraction: float = 0.15,
    q_range: Tuple[float, float] = (5.0, 80.0),
    d_norm: float = 0.1,
    sigma_target: Optional[float] = 1.05,
    grid_points: int = 300,
) -> SimoRealization:
    """Random structured macromodel with an *exact* total order ``n``.

    Unlike :func:`random_macromodel`, each column draws its own pole set
    (the general multi-SIMO structure of eq. 2); the per-column order is
    ``n // p`` with the remainder spread over the leading columns, so any
    ``(n, p)`` combination from Table I is realizable exactly.

    Returns
    -------
    SimoRealization
    """
    order = ensure_positive_int(order, "order")
    num_ports = ensure_positive_int(num_ports, "num_ports")
    if order < num_ports:
        raise ValueError(f"order ({order}) must be >= num_ports ({num_ports})")
    ensure_in_range(d_norm, "d_norm", 0.0, 0.999)
    rng = as_generator(seed)

    base = order // num_ports
    remainder = order - base * num_ports
    columns = []
    for k in range(num_ports):
        mk = base + (1 if k < remainder else 0)
        # A column order of 1 forces one real pole; random_pole_set handles
        # parity by moving odd leftovers to the real set.
        poles = random_pole_set(
            mk,
            rng,
            band=band,
            real_fraction=real_fraction,
            q_range=q_range,
        )
        # random_pole_set preserves the requested count exactly.
        res = _random_residues(rng, poles, num_ports)
        real_mask = np.abs(poles.imag) <= 1e-12 * np.maximum(np.abs(poles), 1.0)
        real_poles = poles[real_mask].real
        # Per-column residue *vectors*: column k of each residue matrix.
        real_residues = res[real_mask][:, :, k].real
        pair_mask_upper = (~real_mask) & (poles.imag > 0)
        pair_poles = poles[pair_mask_upper]
        pair_residues = res[pair_mask_upper][:, :, k]
        columns.append(
            SimoColumn(real_poles, real_residues, pair_poles, pair_residues)
        )
    d = _random_direct_term(rng, num_ports, d_norm)
    simo = SimoRealization(columns, d)
    if simo.order != order:
        raise AssertionError(
            f"internal error: built order {simo.order}, expected {order}"
        )

    if sigma_target is not None:
        grid = _scaling_grid(simo.poles(), band, grid_points)
        responses = simo.frequency_response(grid)
        s = scale_to_sigma_target(d, responses, sigma_target)
        scaled_columns = [
            SimoColumn(
                col.real_poles,
                s * col.real_residues,
                col.pair_poles,
                s * col.pair_residues,
            )
            for col in simo.columns
        ]
        simo = SimoRealization(scaled_columns, d)
    return simo
