"""The 12 benchmark cases of Table I, reproduced synthetically.

Each :class:`CaseSpec` carries the dynamic order ``n`` and port count
``p`` of the corresponding row of Table I, the paper's measured values
(imaginary eigenvalue count and CPU times, for side-by-side reporting),
and the synthesis parameters of our substitute model.  Cases 4 and 6 are
passive in the paper (``N_lambda = 0``); the substitutes target a peak
singular value just below 1 so they are passive too.  All other cases
target a peak slightly above 1 so the solver has crossings to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.macromodel.simo import SimoRealization
from repro.synth.generator import random_simo_macromodel

__all__ = ["CaseSpec", "TABLE1_CASES", "build_case", "fig6_case"]


@dataclass(frozen=True)
class CaseSpec:
    """One row of Table I plus the synthesis recipe for its substitute.

    Attributes
    ----------
    case_id:
        1-based case number as in the paper.
    order:
        Dynamic order ``n``.
    ports:
        Port count ``p``.
    paper_nlambda:
        Number of imaginary Hamiltonian eigenvalues the paper reports.
    paper_tau1 / paper_tau16 / paper_tau16_max / paper_eta16:
        CPU seconds (serial; 16-thread mean; 16-thread worst case) and
        mean speedup from Table I — reference values only.
    sigma_target:
        Peak singular value targeted by the synthetic substitute.
    q_range:
        Resonance quality-factor range (higher -> sharper resonances ->
        more localized crossings).
    seed:
        Generator seed (fixed per case for reproducibility).
    """

    case_id: int
    order: int
    ports: int
    paper_nlambda: int
    paper_tau1: float
    paper_tau16: float
    paper_tau16_max: float
    paper_eta16: float
    sigma_target: float
    q_range: Tuple[float, float] = (5.0, 80.0)
    seed: int = 0

    @property
    def name(self) -> str:
        """Human-readable label, e.g. ``"Case 3"``."""
        return f"Case {self.case_id}"


#: Table I of the paper: (n, p, N_lambda, tau1, tau16, tau16max, eta16).
TABLE1_CASES = (
    CaseSpec(1, 1000, 20, 6, 13.763, 0.655, 0.844, 21.028, sigma_target=1.02, seed=101),
    CaseSpec(
        2, 1000, 20, 42, 10.911, 0.521, 0.579, 20.957, sigma_target=1.08, seed=102
    ),
    CaseSpec(
        3, 1000, 20, 40, 11.729, 0.565, 0.639, 20.745, sigma_target=1.08, seed=103
    ),
    CaseSpec(4, 1980, 18, 0, 81.193, 5.020, 5.208, 16.175, sigma_target=0.95, seed=104),
    CaseSpec(
        5, 2240, 56, 22, 33.972, 1.950, 2.121, 17.420, sigma_target=1.05, seed=105
    ),
    CaseSpec(6, 1728, 18, 0, 46.735, 3.022, 3.109, 15.463, sigma_target=0.95, seed=106),
    CaseSpec(
        7, 1734, 83, 10, 22.836, 1.518, 1.563, 15.040, sigma_target=1.03, seed=107
    ),
    CaseSpec(
        8, 1792, 56, 104, 50.933, 3.627, 3.736, 14.044, sigma_target=1.12, seed=108
    ),
    CaseSpec(
        9, 1702, 56, 115, 14.206, 0.976, 1.055, 14.554, sigma_target=1.12, seed=109
    ),
    CaseSpec(
        10, 4150, 83, 114, 64.396, 5.171, 6.024, 12.453, sigma_target=1.10, seed=110
    ),
    CaseSpec(
        11, 1792, 56, 125, 54.470, 3.809, 3.911, 14.301, sigma_target=1.13, seed=111
    ),
    CaseSpec(
        12, 2432, 83, 46, 27.842, 1.955, 2.043, 14.242, sigma_target=1.06, seed=112
    ),
)


def build_case(spec: CaseSpec, *, scale: float = 1.0) -> SimoRealization:
    """Build the synthetic substitute model for a Table I case.

    Parameters
    ----------
    spec:
        The case specification.
    scale:
        Order scale factor in (0, 1]; benchmarks use ``scale < 1`` for
        quick runs (the port count is kept, the dynamic order shrinks, to
        a floor of one pole per column).

    Returns
    -------
    SimoRealization
        Structured realization with ``order == round(spec.order * scale)``
        (floored at ``spec.ports``).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    order = max(spec.ports, int(round(spec.order * scale)))
    return random_simo_macromodel(
        order,
        spec.ports,
        seed=spec.seed,
        sigma_target=spec.sigma_target,
        q_range=spec.q_range,
    )


def fig6_case(*, scale: float = 1.0) -> SimoRealization:
    """The Case 5 model used for the Fig. 6 thread-scaling study."""
    return build_case(TABLE1_CASES[4], scale=scale)
