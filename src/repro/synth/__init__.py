"""Synthetic macromodel generation.

The paper evaluates on 12 proprietary industrial interconnect macromodels
(Table I).  This subpackage provides the substitute documented in
DESIGN.md: random pole/residue macromodels with the same dynamic order and
port counts, with a controllable passivity profile (strictly passive or
violating with a tunable margin) so that every benchmark exercises the
same code paths as the paper's test cases.
"""

from repro.synth.generator import (
    random_macromodel,
    random_pole_set,
    random_simo_macromodel,
    scale_to_sigma_target,
)
from repro.synth.workloads import TABLE1_CASES, CaseSpec, build_case, fig6_case

__all__ = [
    "random_pole_set",
    "random_macromodel",
    "random_simo_macromodel",
    "scale_to_sigma_target",
    "TABLE1_CASES",
    "CaseSpec",
    "build_case",
    "fig6_case",
]
