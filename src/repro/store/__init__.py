"""Content-addressed result store (the durable cache under the service).

The paper's pipeline is expensive and deterministic per (input, config):
re-running a characterization on an unchanged model with an unchanged
:class:`~repro.core.config.RunConfig` recomputes the identical
``to_dict()`` payload.  This package memoizes those payloads on disk,
keyed by SHA-256 of a canonical serialization of input + config + stage
(:mod:`repro.store.keys`), with atomic writes, LRU size-capped eviction,
and corruption-tolerant reads (:mod:`repro.store.store`), plus the
stage codecs that turn payloads back into live result objects
(:mod:`repro.store.codec`).

Opt in through ``RunConfig(cache="readwrite")`` (or ``REPRO_CACHE``);
inspect and manage with ``repro cache {stats,clear,prune}``.
"""

from repro.store.codec import STAGES, decode_result, encode_result
from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    array_digest,
    canonical_json,
    content_key,
    file_digest,
    result_key,
)
from repro.store.store import (
    DEFAULT_MAX_BYTES,
    ResultStore,
    default_cache_dir,
    default_max_bytes,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "ResultStore",
    "default_cache_dir",
    "default_max_bytes",
    "canonical_json",
    "content_key",
    "array_digest",
    "file_digest",
    "result_key",
    "STAGES",
    "encode_result",
    "decode_result",
]
