"""On-disk content-addressed result store.

Layout (one directory per store)::

    <root>/
      index.json              # advisory index: key -> {size, stage, created}
      objects/<k[:2]>/<key>.json   # one JSON envelope per entry

Entries are written atomically (temp file in the destination directory +
``os.replace``), so concurrent writers — threads and whole process pools
— can share a store without locks: the worst case is the same entry
written twice, and last-writer-wins is harmless for content-addressed
values.  Reads are corruption-tolerant: a truncated, unparsable, or
wrong-schema entry counts as a miss and is discarded, never raised.

The index file is an *acceleration*, not a source of truth — it is
rebuilt from a directory scan whenever it is missing, stale, or
unreadable, so a crash between an object write and an index write can
never corrupt the store.

Eviction is LRU by file mtime (touched on every hit) against a byte-size
cap (``max_bytes``; ``REPRO_CACHE_MAX_BYTES``; 0 disables the cap).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.faults import init_from_env as _faults_init_from_env
from repro.faults import inject as _inject
from repro.obs import trace as _obs_trace
from repro.obs.metrics import get_registry as _obs_metrics
from repro.store.keys import STORE_SCHEMA_VERSION
from repro.utils.retry import RetryPolicy, retry_call

__all__ = [
    "DEFAULT_MAX_BYTES",
    "ResultStore",
    "default_cache_dir",
    "default_max_bytes",
]

#: Backoff absorbing transient I/O races (concurrent writers, injected
#: io_errors); bounded so a genuinely dead disk fails in well under a
#: second and the caller's graceful-degradation path takes over.
_IO_RETRY = RetryPolicy(max_attempts=4, base_seconds=0.005, cap_seconds=0.05)


def _transient_io(exc: BaseException) -> bool:
    """Retriable store I/O failures: any OSError except a clean miss."""
    return isinstance(exc, OSError) and not isinstance(exc, FileNotFoundError)

#: Default size cap of a store: 512 MiB.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

_INDEX_NAME = "index.json"
_OBJECTS_DIR = "objects"

#: Large stores flush the advisory index at most every this many writes
#: (small stores flush every write — the dump is cheap there), keeping a
#: burst of N puts O(N) instead of O(N^2) in index serialization.
_INDEX_FLUSH_EVERY = 16
_INDEX_FLUSH_SMALL = 64


def default_cache_dir() -> Path:
    """The default store location: ``REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def default_max_bytes() -> Optional[int]:
    """The default size cap: ``REPRO_CACHE_MAX_BYTES`` (0 = unlimited),
    else :data:`DEFAULT_MAX_BYTES`.

    Raises
    ------
    repro.ConfigError
        When the environment value is not a valid integer.
    """
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return DEFAULT_MAX_BYTES
    from repro.core.config import ConfigError

    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigError(
            f"invalid REPRO_CACHE_MAX_BYTES={raw!r}: {exc}"
        ) from exc
    if value < 0:
        raise ConfigError(
            f"invalid REPRO_CACHE_MAX_BYTES={raw!r}: must be >= 0"
        )
    return None if value == 0 else value


class ResultStore:
    """A content-addressed, size-capped, corruption-tolerant result cache.

    Parameters
    ----------
    root:
        Store directory (created on first write).  Defaults to
        :func:`default_cache_dir`.
    max_bytes:
        LRU eviction threshold in bytes; ``None`` defers to
        :func:`default_max_bytes`, ``0`` disables eviction.
    schema:
        Entry schema version; entries written under any other version
        are treated as misses (and discarded when encountered).

    Notes
    -----
    Instances are thread-safe; distinct instances (including in other
    processes) may point at the same ``root`` concurrently.  The
    ``counters`` dict tracks this instance's traffic only — hits,
    misses, writes, evictions, and corrupt entries discarded.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        max_bytes: Optional[int] = None,
        schema: int = STORE_SCHEMA_VERSION,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            max_bytes = default_max_bytes()
        elif max_bytes == 0:
            max_bytes = None
        elif max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.schema = int(schema)
        # Surface a malformed REPRO_FAULTS plan here, at construction,
        # instead of deep inside a hot read path (no-op when unset).
        _faults_init_from_env()
        self._lock = threading.Lock()
        # Infrastructure-failure state feeding health(): consecutive
        # non-miss I/O failures and the last one seen.  A miss is a
        # *successful* I/O round trip; only real errno failures count.
        self._failures = 0
        self._last_error: Optional[str] = None
        # Running byte estimate so a put() under the cap never has to
        # stat the whole store; seeded lazily from one scan, re-trued on
        # every eviction pass.  Other processes' writes are invisible to
        # it, which only delays (never prevents) an eviction pass.
        self._approx_bytes: Optional[int] = None
        self._index_cache: Optional[Dict[str, dict]] = None
        self._index_dirty = 0
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "evictions": 0,
            "corrupt": 0,
            "read_errors": 0,
            "write_errors": 0,
            "retries": 0,
        }

    @classmethod
    def from_config(cls, config: Any) -> "ResultStore":
        """Build a store from a :class:`~repro.core.config.RunConfig`
        (its ``cache_dir`` field, else the default location)."""
        cache_dir = getattr(config, "cache_dir", None)
        return cls(cache_dir)

    # -- paths --------------------------------------------------------------

    def _objects_root(self) -> Path:
        return self.root / _OBJECTS_DIR

    def _entry_path(self, key: str) -> Path:
        key = str(key)
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key {key!r}")
        return self._objects_root() / key[:2] / f"{key}.json"

    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    # -- reads --------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Return the payload stored under ``key``, or ``None`` on a miss.

        Corrupt or wrong-schema entries are misses: counted, discarded
        best-effort, never raised.  A *transient* read failure (EIO and
        friends, retried with backoff first) is also a miss, but the
        entry is left in place — a flaky disk is not evidence the bytes
        are bad — and recorded against :meth:`health`.  A hit refreshes
        the entry's LRU timestamp.
        """
        started = time.perf_counter()
        with _obs_trace.span("store.get", key=key[:16]) as span:
            payload = self._get_inner(key)
            span.annotate("hit", payload is not None)
        registry = _obs_metrics()
        registry.observe("store.get", time.perf_counter() - started)
        registry.count(
            "store.get.hits" if payload is not None else "store.get.misses"
        )
        return payload

    def _get_inner(self, key: str) -> Optional[dict]:
        path = self._entry_path(key)

        def _read() -> bytes:
            fault = _inject("store.read")
            data = path.read_bytes()
            if fault == "corrupt":
                # Injected bit-rot: flip one byte mid-payload so the
                # validation below must catch it.
                mid = len(data) // 2
                data = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]
            return data

        try:
            doc = json.loads(
                retry_call(
                    _read,
                    policy=_IO_RETRY,
                    retry_on=_transient_io,
                    on_retry=self._count_retry,
                )
            )
        except FileNotFoundError:
            self.counters["misses"] += 1
            self._note_ok()
            return None
        except OSError as exc:
            # Transient infrastructure failure: miss, but keep the
            # entry — discarding on EIO would let a flaky disk empty
            # the whole store.
            self.counters["misses"] += 1
            self.counters["read_errors"] += 1
            self._note_failure(exc)
            return None
        except ValueError:
            self._discard(path, corrupt=True)
            self.counters["misses"] += 1
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != self.schema
            or doc.get("key") != key
            or not isinstance(doc.get("payload"), dict)
        ):
            # Wrong schema version or a foreign/forged file at this
            # address: unusable either way, so reclaim the space.
            self._discard(path, corrupt=True)
            self.counters["misses"] += 1
            return None
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass
        self.counters["hits"] += 1
        self._note_ok()
        return doc["payload"]

    def contains(self, key: str) -> bool:
        """True when a valid entry exists (no counters, no LRU touch)."""
        path = self._entry_path(key)
        try:
            doc = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return False
        return (
            isinstance(doc, dict)
            and doc.get("schema") == self.schema
            and doc.get("key") == key
            and isinstance(doc.get("payload"), dict)
        )

    # -- writes -------------------------------------------------------------

    def put(self, key: str, payload: dict, *, stage: str = "result") -> bool:
        """Persist ``payload`` under ``key`` atomically; returns success.

        The payload must already be JSON-serializable (the uniform
        ``to_dict()`` contract).  Failures — unwritable directory, disk
        full — are reported as ``False``, never raised: the cache is an
        accelerator, and a computation must not die because its result
        could not be memoized.
        """
        started = time.perf_counter()
        with _obs_trace.span("store.put", key=key[:16], stage=stage) as span:
            ok = self._put_inner(key, payload, stage=stage)
            span.annotate("ok", ok)
        registry = _obs_metrics()
        registry.observe("store.put", time.perf_counter() - started)
        registry.count("store.put.writes" if ok else "store.put.errors")
        return ok

    def _put_inner(self, key: str, payload: dict, *, stage: str) -> bool:
        if not isinstance(payload, dict):
            raise TypeError(
                f"payload must be a dict, got {type(payload).__name__}"
            )
        path = self._entry_path(key)
        envelope = {
            "schema": self.schema,
            "key": key,
            "stage": str(stage),
            "created": time.time(),
            "payload": payload,
        }
        try:
            data = json.dumps(envelope, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError):
            return False

        def _write_once() -> None:
            fault = _inject("store.write")
            # An injected truncation survives on disk as a partial
            # write: the replace goes through with a strict prefix of
            # the envelope, which a later get() must reject as corrupt.
            body = data if fault != "truncate" else data[: len(data) // 2]
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(body)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

        with self._lock:
            try:
                retry_call(
                    _write_once,
                    policy=_IO_RETRY,
                    retry_on=_transient_io,
                    on_retry=self._count_retry,
                )
            except OSError as exc:
                self.counters["write_errors"] += 1
                self._note_failure(exc)
                return False
            self.counters["writes"] += 1
            self._note_ok()
            self._update_index(
                {
                    key: {
                        "size": len(data),
                        "stage": str(stage),
                        "created": envelope["created"],
                    }
                }
            )
            if self.max_bytes is not None:
                if self._approx_bytes is None:
                    self._approx_bytes = sum(
                        size for _k, _p, size, _m in self._scan()
                    )
                else:
                    self._approx_bytes += len(data)
                if self._approx_bytes > self.max_bytes:
                    self._evict_locked(self.max_bytes)
        return True

    def _discard(self, path: Path, *, corrupt: bool = False) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        if corrupt:
            self.counters["corrupt"] += 1

    # -- health -------------------------------------------------------------

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.counters["retries"] += 1

    def _note_ok(self) -> None:
        self._failures = 0
        self._last_error = None

    def _note_failure(self, exc: BaseException) -> None:
        self._failures += 1
        self._last_error = f"{type(exc).__name__}: {exc}"

    def health(self) -> dict:
        """Passive health snapshot: ``ok`` until I/O actually fails.

        The state is self-healing — any subsequent successful operation
        (including a clean miss) resets it — so a transient blip clears
        on the next touch while a dead disk stays ``failing``.
        """
        failing = self._failures > 0
        return {
            "status": "failing" if failing else "ok",
            "consecutive_failures": self._failures,
            "last_error": self._last_error,
        }

    def probe(self) -> dict:
        """Actively exercise the read path, then report :meth:`health`.

        Reads a reserved key that never exists: a clean miss proves the
        I/O path works (and resets the failure state); an errno failure
        records itself.  No counters are touched — probes must not
        pollute traffic statistics.
        """
        path = self._entry_path("00" * 20)
        try:
            _inject("store.read")
            path.read_bytes()
        except FileNotFoundError:
            self._note_ok()
        except OSError as exc:
            self._note_failure(exc)
        else:  # pragma: no cover - the reserved key should never exist
            self._note_ok()
        return self.health()

    # -- index --------------------------------------------------------------

    def _load_index(self) -> Dict[str, dict]:
        try:
            doc = json.loads(self._index_path().read_bytes())
        except (OSError, ValueError):
            return {}
        if not isinstance(doc, dict) or doc.get("schema") != self.schema:
            return {}
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _index_entries(self) -> Dict[str, dict]:
        """This instance's working copy of the index (loaded once).

        Kept in memory between puts so the hot path never re-reads the
        file; concurrent writers in other processes may make it stale,
        which is fine — the index is advisory and rebuilt from a scan
        wherever correctness matters.
        """
        if self._index_cache is None:
            self._index_cache = self._load_index()
        return self._index_cache

    def _write_index(self, entries: Dict[str, dict]) -> None:
        payload = {"schema": self.schema, "entries": entries}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=".index-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, self._index_path())
        except OSError:
            # The index is advisory; a failed update only costs a rebuild.
            pass

    def _update_index(
        self, updates: Dict[str, Optional[dict]], *, flush: bool = False
    ) -> None:
        entries = self._index_entries()
        for key, value in updates.items():
            if value is None:
                entries.pop(key, None)
            else:
                entries[key] = value
        self._index_dirty += 1
        if (
            flush
            or len(entries) <= _INDEX_FLUSH_SMALL
            or self._index_dirty >= _INDEX_FLUSH_EVERY
        ):
            self._write_index(entries)
            self._index_dirty = 0

    def rebuild_index(self) -> int:
        """Rebuild ``index.json`` from a directory scan; returns the
        number of entries indexed."""
        with self._lock:
            entries = {
                key: {"size": size, "stage": None, "created": mtime}
                for key, _path, size, mtime in self._scan()
            }
            self._index_cache = entries
            self._write_index(entries)
            return len(entries)

    # -- maintenance --------------------------------------------------------

    def _scan(self) -> List[Tuple[str, Path, int, float]]:
        """Authoritative listing: ``(key, path, size, mtime)`` per entry."""
        found: List[Tuple[str, Path, int, float]] = []
        objects = self._objects_root()
        if not objects.is_dir():
            return found
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append((path.stem, path, int(stat.st_size), stat.st_mtime))
        return found

    def _evict_locked(self, max_bytes: Optional[int]) -> int:
        if max_bytes is None:
            return 0
        entries = self._scan()
        total = sum(size for _k, _p, size, _m in entries)
        removed = 0
        index_updates: Dict[str, Optional[dict]] = {}
        if total > max_bytes:
            for key, path, size, _mtime in sorted(entries, key=lambda e: e[3]):
                if total <= max_bytes:
                    break
                self._discard(path)
                index_updates[key] = None
                total -= size
                removed += 1
        # The scan was authoritative either way: re-true the estimate.
        self._approx_bytes = total
        if index_updates:
            self.counters["evictions"] += removed
            self._update_index(index_updates, flush=True)
        return removed

    def prune(self, max_bytes: Optional[int] = None) -> dict:
        """Evict LRU entries down to ``max_bytes``; returns a summary.

        ``None`` prunes to the store's own cap.  Unlike the constructor
        (where ``0`` follows the ``REPRO_CACHE_MAX_BYTES`` convention of
        "unlimited"), an explicit ``prune(0)`` means what it says: evict
        everything.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        with self._lock:
            removed = self._evict_locked(cap)
            entries = self._scan()
        return {
            "removed": removed,
            "entries": len(entries),
            "total_bytes": sum(size for _k, _p, size, _m in entries),
            "max_bytes": cap,
        }

    def clear(self) -> int:
        """Delete every entry (and the index); returns the number removed."""
        with self._lock:
            entries = self._scan()
            for _key, path, _size, _mtime in entries:
                self._discard(path)
            try:
                self._index_path().unlink()
            except OSError:
                pass
            self._approx_bytes = 0
            self._index_cache = {}
            return len(entries)

    def stats(self) -> dict:
        """Store statistics from an authoritative directory scan.

        Entry and byte counts come from the scan; the per-stage labels
        come from the advisory index, whose flush is amortized on large
        stores — entries another process wrote very recently may show
        under stage ``None`` there.
        """
        entries = self._scan()
        stages: Dict[str, int] = {}
        index = self._index_entries()
        for key, _path, _size, _mtime in entries:
            stage = (index.get(key) or {}).get("stage")
            stages[str(stage)] = stages.get(str(stage), 0) + 1
        return {
            "root": str(self.root),
            "schema": self.schema,
            "entries": len(entries),
            "total_bytes": sum(size for _k, _p, size, _m in entries),
            "max_bytes": self.max_bytes,
            "stages": stages,
            "counters": dict(self.counters),
            "health": self.health(),
        }

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, schema={self.schema},"
            f" max_bytes={self.max_bytes})"
        )
