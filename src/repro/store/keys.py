"""Content-addressed cache keys: canonical serialization + SHA-256.

Every cache entry is addressed by the SHA-256 of a *canonical* JSON
serialization of everything that determines the computation's outcome:

* the input — a :class:`~repro.macromodel.rational.PoleResidueModel`
  ``to_dict()`` payload, or the raw sample arrays of a fitting run (both
  reduced to a digest first so the key document stays tiny);
* the frozen :class:`~repro.core.config.RunConfig` (minus the cache
  control fields themselves — whether a run reads the cache must not
  change what it computes);
* the stage name and its stage-specific parameters (enforcement margin,
  H-infinity tolerance, fit order, ...);
* the store schema version, so a payload-format change can never be
  misread as a valid entry — old keys simply become unreachable.

Canonical means ``sort_keys=True`` with compact separators and no NaN
literals (non-finite floats are already ``None`` after
:func:`~repro.utils.serialization.to_jsonable`), so logically equal
inputs hash identically across processes and platforms.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Optional, Union

import numpy as np

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "content_key",
    "array_digest",
    "file_digest",
    "result_key",
]

#: Bumped whenever the stored payload format (or key document layout)
#: changes incompatibly.  Part of every key *and* every entry envelope:
#: entries written under another schema are treated as misses.
STORE_SCHEMA_VERSION = 1

#: RunConfig fields that control cache behavior rather than the
#: computation itself; excluded from the key document.
_CACHE_CONTROL_FIELDS = ("cache", "cache_dir")


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to canonical JSON (sorted keys, compact, no NaN)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON serialization of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def array_digest(*arrays: Any, extra: Optional[Mapping[str, Any]] = None) -> str:
    """SHA-256 hex digest of numpy arrays (dtype + shape + raw bytes).

    Used to reduce bulky numeric inputs (frequency grids, sample
    matrices) to a fixed-size token before they enter the key document.
    ``extra`` folds scalar context (parameter type, reference impedance)
    into the same digest.
    """
    hasher = hashlib.sha256()
    for array in arrays:
        arr = np.ascontiguousarray(np.asarray(array))
        hasher.update(str(arr.dtype).encode("utf-8"))
        hasher.update(str(arr.shape).encode("utf-8"))
        hasher.update(arr.tobytes())
    if extra:
        hasher.update(canonical_json({str(k): v for k, v in extra.items()}).encode())
    return hasher.hexdigest()


def file_digest(path: Union[str, Path], *, chunk_size: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file's raw bytes (e.g. a Touchstone file)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while chunk := handle.read(chunk_size):
            hasher.update(chunk)
    return hasher.hexdigest()


def result_key(
    *,
    stage: str,
    input_digest: str,
    config: Optional[Any] = None,
    params: Optional[Mapping[str, Any]] = None,
    schema: int = STORE_SCHEMA_VERSION,
) -> str:
    """Build the cache key for one (input, config, stage) computation.

    Parameters
    ----------
    stage:
        Stage name (``"fit"``, ``"check"``, ``"enforce"``, ``"hinf"``,
        ``"solve"``, ``"simulate"``, ``"service-job"``, ...).  Stages
        whose outcome is independent of the solver config (fitting, the
        transient ``simulate`` stage) pass ``config=None`` and carry
        everything that matters in ``params`` — e.g. the stimulus and
        termination ``to_dict()`` payloads.
    input_digest:
        Digest of the stage input (:func:`content_key` of a model dict,
        :func:`array_digest` of sample arrays, :func:`file_digest` of
        Touchstone bytes).
    config:
        The :class:`~repro.core.config.RunConfig` in effect (its
        ``to_dict()`` minus the cache control fields enters the key), or
        ``None`` for config-independent entries.
    params:
        Stage-specific parameters (must already be JSON-serializable).
    """
    config_doc = None
    if config is not None:
        config_doc = {
            k: v
            for k, v in config.to_dict().items()
            if k not in _CACHE_CONTROL_FIELDS
        }
    return content_key(
        {
            "schema": int(schema),
            "stage": str(stage),
            "input": str(input_digest),
            "config": config_doc,
            "params": dict(params) if params else {},
        }
    )
