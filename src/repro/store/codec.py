"""Stage codecs: result object <-> stored ``to_dict()`` payload.

One registry maps each cacheable pipeline stage to the richest
``to_dict()`` form (so nothing is lost across the cache boundary) and
the matching ``from_dict`` reconstructor.  The invariant the property
tests pin down: for every stage,
``encode(decode(encode(result))) == encode(result)`` and the decoded
object's plain ``to_dict()`` equals the fresh result's plain
``to_dict()`` — a cache hit is indistinguishable from a recomputation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.core.results import SolveResult
from repro.passivity.characterization import PassivityReport
from repro.passivity.enforcement import EnforcementResult
from repro.passivity.hinf import HinfResult
from repro.passivity.immittance import ImmittancePassivityReport
from repro.timedomain.engine import SimulationResult
from repro.vectfit.vector_fitting import FitResult

__all__ = ["STAGES", "encode_result", "decode_result"]

#: stage name -> (encoder, decoder).  Encoders embed the full provenance
#: (solve records, final models) so decoding restores a complete object.
STAGES: Dict[str, Tuple[Callable[[Any], dict], Callable[[dict], Any]]] = {
    "fit": (
        lambda result: result.to_dict(include_model=True),
        FitResult.from_dict,
    ),
    "check": (
        lambda result: result.to_dict(include_solve=True),
        PassivityReport.from_dict,
    ),
    "check-immittance": (
        lambda result: result.to_dict(include_solve=True),
        ImmittancePassivityReport.from_dict,
    ),
    "enforce": (
        lambda result: result.to_dict(include_model=True, include_solve=True),
        EnforcementResult.from_dict,
    ),
    "hinf": (
        lambda result: result.to_dict(),
        HinfResult.from_dict,
    ),
    "solve": (
        lambda result: result.to_dict(include_shifts=True),
        SolveResult.from_dict,
    ),
    # Waveform arrays are deliberately NOT stored: cacheable simulate
    # runs are the compact (keep_waveforms=False) ones, so the stored
    # witness payload is a few hundred bytes regardless of step count.
    "simulate": (
        lambda result: result.to_dict(),
        SimulationResult.from_dict,
    ),
}


def encode_result(stage: str, result: Any) -> dict:
    """Serialize ``result`` to the payload stored for ``stage``."""
    try:
        encoder, _decoder = STAGES[stage]
    except KeyError:
        raise ValueError(
            f"unknown cacheable stage {stage!r}; known: {sorted(STAGES)}"
        ) from None
    return encoder(result)


def decode_result(stage: str, payload: dict) -> Any:
    """Rebuild the result object a ``stage`` payload describes."""
    try:
        _encoder, decoder = STAGES[stage]
    except KeyError:
        raise ValueError(
            f"unknown cacheable stage {stage!r}; known: {sorted(STAGES)}"
        ) from None
    return decoder(payload)
