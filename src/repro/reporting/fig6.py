"""Fig. 6 driver: speedup vs. thread count for the Case 5 model.

The paper runs Case 5 twenty times per thread count ``t = 1..16`` with
random Arnoldi start vectors and plots the mean speedup with standard
deviations.  Run as a module::

    python -m repro.reporting.fig6 --scale 0.1 --max-threads 8 --repeats 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.reporting.projection import project_speedup
from repro.reporting.sweepcheck import sweep_crossing_check
from repro.reporting.tables import Fig6Point, format_fig6
from repro.synth.workloads import fig6_case

__all__ = ["run_fig6", "main"]


def run_fig6(
    *,
    scale: float = 1.0,
    threads: Sequence[int] = tuple(range(1, 17)),
    repeats: int = 20,
    options: Optional[SolverOptions] = None,
    model=None,
    validate_points: int = 0,
) -> List[Fig6Point]:
    """Measure the speedup curve.

    The serial reference ``tau_1`` / ``W_1`` is re-measured per repeat with
    the repeat's seed (matching the paper's protocol, where the statistical
    variation of the *random start vectors* is part of the measurement).

    Parameters
    ----------
    scale:
        Order scale factor for the Case 5 model.
    threads:
        Thread counts to measure.
    repeats:
        Independent randomized runs per thread count (paper: 20).
    options:
        Base solver options; each repeat derives a distinct seed.
    model:
        Optional pre-built model (defaults to the Case 5 substitute).

    Returns
    -------
    list of Fig6Point
    """
    options = options if options is not None else SolverOptions()
    model = model if model is not None else fig6_case(scale=scale)

    # Per-repeat serial references.
    serial_time: List[float] = []
    serial_work: List[int] = []
    serial_results = []
    for rep in range(repeats):
        rep_options = options.with_(seed=(options.seed or 0) + 7919 * (rep + 1))
        res = solve_serial(model, strategy="bisection", options=rep_options)
        serial_time.append(res.elapsed)
        serial_work.append(res.work.get("operator_applies", 1))
        serial_results.append(res)

    if validate_points and serial_results:
        check = sweep_crossing_check(
            model, serial_results[0], points=validate_points
        )
        prefix = "" if check.ok else "WARNING: "
        print(f"{prefix}fig6 case: {check.summary()}", file=sys.stderr)

    points: List[Fig6Point] = []
    for t in threads:
        eta_wall: List[float] = []
        eta_work: List[float] = []
        eta_proj: List[float] = []
        for rep in range(repeats):
            rep_options = options.with_(seed=(options.seed or 0) + 7919 * (rep + 1))
            if t == 1:
                res = solve_serial(model, strategy="queue", options=rep_options)
            else:
                res = solve_parallel(model, num_threads=t, options=rep_options)
            eta_wall.append(
                serial_time[rep] / res.elapsed if res.elapsed > 0 else np.inf
            )
            eta_work.append(
                serial_work[rep] / max(res.work.get("operator_applies", 1), 1)
            )
            eta_proj.append(
                project_speedup(serial_results[rep], res, int(t)).eta_makespan
            )
        points.append(
            Fig6Point(
                threads=int(t),
                eta_wall_mean=float(np.mean(eta_wall)),
                eta_wall_std=float(np.std(eta_wall)),
                eta_work_mean=float(np.mean(eta_work)),
                eta_work_std=float(np.std(eta_work)),
                eta_proj_mean=float(np.mean(eta_proj)),
                eta_proj_std=float(np.std(eta_proj)),
            )
        )
    return points


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=1.0, help="order scale factor (0, 1]"
    )
    parser.add_argument("--max-threads", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument(
        "--validate-points",
        type=int,
        default=0,
        help="cross-validate crossings with a batched dense sigma sweep of"
        " this many points (0 = off)",
    )
    args = parser.parse_args(argv)

    print(
        f"measuring Fig. 6 series (scale={args.scale},"
        f" t=1..{args.max_threads}, {args.repeats} repeats)...",
        file=sys.stderr,
    )
    points = run_fig6(
        scale=args.scale,
        threads=tuple(range(1, args.max_threads + 1)),
        repeats=args.repeats,
        validate_points=args.validate_points,
    )
    print(format_fig6(points))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
