"""Batched singular-value sweep cross-validation for the reporting drivers.

The Table I / Fig. 6 drivers trust the Hamiltonian eigensolver for the
crossing set ``Omega``.  This module provides an independent, cheap sanity
check: one *batched* dense frequency sweep — a single multi-shift
``transfer_many`` evaluation followed by one stacked ``numpy.linalg.svd``
over the ``(K, p, p)`` responses — and a comparison of the unit-threshold
sign changes it detects against the reported crossings.  A sign change the
solver did not report is a genuine miss; the converse is fine (tangential
crossings produce no sign change on a finite grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.core.results import SolveResult
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.passivity.metrics import sigma_max_many

__all__ = ["SweepCheck", "sweep_crossing_check"]

ModelLike = Union[PoleResidueModel, SimoRealization]


@dataclass(frozen=True)
class SweepCheck:
    """Outcome of the dense-sweep cross-validation.

    Attributes
    ----------
    points:
        Grid size of the batched sweep.
    detected:
        Unit-threshold sign changes seen on the grid.
    matched:
        Detected sign changes that fall next to a reported crossing.
    missing:
        Grid intervals ``(lo, hi)`` holding a sign change with no reported
        crossing nearby — evidence of a missed eigenvalue.
    max_sigma:
        Largest singular value seen on the grid.
    """

    points: int
    detected: int
    matched: int
    missing: Tuple[Tuple[float, float], ...]
    max_sigma: float

    @property
    def ok(self) -> bool:
        """True when every detected sign change matches a reported crossing."""
        return not self.missing

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return (
                f"sweep check ok: {self.detected} threshold sign change(s) on"
                f" {self.points} points, all matched (max sigma {self.max_sigma:.4f})"
            )
        spans = ", ".join(f"[{lo:.4g}, {hi:.4g}]" for lo, hi in self.missing)
        return (
            f"sweep check FAILED: {len(self.missing)} unmatched sign change(s)"
            f" at {spans} ({self.detected} detected, {self.matched} matched)"
        )


def sweep_crossing_check(
    model: ModelLike,
    result: SolveResult,
    *,
    points: int = 1000,
    threshold: float = 1.0,
) -> SweepCheck:
    """Cross-validate a solve result against one batched dense sigma sweep.

    Parameters
    ----------
    model:
        The macromodel the solver characterized.
    result:
        The eigensolver outcome (band and crossing set).
    points:
        Dense grid size; the whole sweep is a single ``(K, p, p)`` batched
        evaluation regardless of ``points``.
    threshold:
        Singular-value threshold (1.0 for scattering passivity).

    Returns
    -------
    SweepCheck
    """
    lo, hi = float(result.band[0]), float(result.band[1])
    if hi <= lo:
        return SweepCheck(points=0, detected=0, matched=0, missing=(), max_sigma=0.0)
    grid = np.linspace(lo, hi, max(3, int(points)))
    sigma = sigma_max_many(model, grid)
    excess = sigma - threshold
    flips = np.nonzero(np.sign(excess[:-1]) * np.sign(excess[1:]) < 0)[0]
    omegas = np.asarray(result.omegas, dtype=float)
    step = grid[1] - grid[0]
    missing = []
    matched = 0
    for i in flips:
        seg_lo, seg_hi = float(grid[i]), float(grid[i + 1])
        if omegas.size and np.any(
            (omegas >= seg_lo - step) & (omegas <= seg_hi + step)
        ):
            matched += 1
        else:
            missing.append((seg_lo, seg_hi))
    return SweepCheck(
        points=int(grid.size),
        detected=int(flips.size),
        matched=matched,
        missing=tuple(missing),
        max_sigma=float(sigma.max()) if sigma.size else 0.0,
    )
