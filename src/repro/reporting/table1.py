"""Table I driver: serial vs. parallel characterization of the 12 cases.

Run as a module::

    python -m repro.reporting.table1 --scale 0.1 --threads 8 --repeats 2

``--scale`` shrinks the dynamic orders for quick runs (1.0 = the paper's
full sizes).  The measured table is printed in the paper's layout with the
paper's reference values alongside.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.reporting.projection import project_speedup
from repro.reporting.sweepcheck import sweep_crossing_check
from repro.reporting.tables import Table1Row, format_table1
from repro.synth.workloads import TABLE1_CASES, CaseSpec, build_case

__all__ = ["run_case", "run_table1", "main"]


def run_case(
    spec: CaseSpec,
    *,
    scale: float = 1.0,
    num_threads: int = 16,
    repeats: int = 1,
    options: Optional[SolverOptions] = None,
    validate_points: int = 0,
) -> Table1Row:
    """Measure one Table I row: serial once, parallel ``repeats`` times.

    With ``validate_points > 0`` the serial crossing set is additionally
    cross-validated against one batched dense sigma sweep of that size
    (see :func:`repro.reporting.sweepcheck.sweep_crossing_check`).
    """
    options = options if options is not None else SolverOptions()
    model = build_case(spec, scale=scale)

    serial = solve_serial(model, strategy="bisection", options=options)
    work_serial = serial.work.get("operator_applies", 0)
    if validate_points:
        check = sweep_crossing_check(model, serial, points=validate_points)
        prefix = "" if check.ok else "WARNING: "
        print(f"{prefix}{spec.name}: {check.summary()}", file=sys.stderr)

    par_times: List[float] = []
    par_works: List[int] = []
    par_projs: List[float] = []
    shifts = eliminated = 0
    nlambda = serial.num_crossings
    for rep in range(repeats):
        rep_options = options.with_(
            seed=(options.seed or 0) + 1000 * (rep + 1)
        )
        par = solve_parallel(
            model, num_threads=num_threads, options=rep_options
        )
        par_times.append(par.elapsed)
        par_works.append(par.work.get("operator_applies", 0))
        par_projs.append(project_speedup(serial, par, num_threads).eta_makespan)
        shifts = par.shifts_processed
        eliminated = par.work.get("shifts_eliminated", 0)
        if par.num_crossings != nlambda:
            # Eigensolvers agree in all validated runs; surface loudly if not.
            print(
                f"WARNING: {spec.name}: serial found {nlambda} crossings,"
                f" parallel rep {rep} found {par.num_crossings}",
                file=sys.stderr,
            )
    tau_t_mean = float(np.mean(par_times))
    tau_t_max = float(np.max(par_times))
    work_par = float(np.mean(par_works))
    return Table1Row(
        case_name=spec.name,
        order=model.order,
        ports=model.num_ports,
        nlambda=nlambda,
        tau1=serial.elapsed,
        tau_t_mean=tau_t_mean,
        tau_t_max=tau_t_max,
        eta_wall=serial.elapsed / tau_t_mean if tau_t_mean > 0 else float("inf"),
        eta_work=work_serial / work_par if work_par > 0 else float("inf"),
        eta_proj=float(np.mean(par_projs)),
        shifts=shifts,
        eliminated=eliminated,
        paper_nlambda=spec.paper_nlambda,
        paper_eta=spec.paper_eta16,
    )


def run_table1(
    *,
    cases: Sequence[CaseSpec] = TABLE1_CASES,
    scale: float = 1.0,
    num_threads: int = 16,
    repeats: int = 1,
    options: Optional[SolverOptions] = None,
    verbose: bool = False,
    validate_points: int = 0,
) -> List[Table1Row]:
    """Measure all requested cases; returns the rows in case order."""
    rows = []
    for spec in cases:
        if verbose:
            print(
                f"running {spec.name} (n={spec.order}, p={spec.ports})...",
                file=sys.stderr,
            )
        rows.append(
            run_case(
                spec,
                scale=scale,
                num_threads=num_threads,
                repeats=repeats,
                options=options,
                validate_points=validate_points,
            )
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=1.0, help="order scale factor (0, 1]"
    )
    parser.add_argument("--threads", type=int, default=16, help="parallel thread count")
    parser.add_argument(
        "--repeats", type=int, default=1, help="parallel repetitions per case"
    )
    parser.add_argument(
        "--cases",
        type=str,
        default="",
        help="comma-separated case numbers (default: all 12)",
    )
    parser.add_argument(
        "--validate-points",
        type=int,
        default=0,
        help="cross-validate crossings with a batched dense sigma sweep of"
        " this many points (0 = off)",
    )
    args = parser.parse_args(argv)

    cases = TABLE1_CASES
    if args.cases:
        wanted = {int(tok) for tok in args.cases.split(",")}
        cases = tuple(c for c in TABLE1_CASES if c.case_id in wanted)
    rows = run_table1(
        cases=cases,
        scale=args.scale,
        num_threads=args.threads,
        repeats=args.repeats,
        verbose=True,
        validate_points=args.validate_points,
    )
    print(format_table1(rows, args.threads))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
