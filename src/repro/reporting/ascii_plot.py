"""Terminal-friendly ASCII plots of frequency responses.

Used by the CLI (``repro check --plot``) and the examples to visualize
singular-value sweeps and violation bands without any plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.utils.validation import ensure_positive_int, ensure_sorted_frequencies

__all__ = ["ascii_series", "sigma_plot"]

ModelLike = Union[PoleResidueModel, SimoRealization]


def ascii_series(
    x: np.ndarray,
    y: np.ndarray,
    *,
    width: int = 72,
    height: int = 16,
    marker: str = "*",
    hline: Optional[float] = None,
    title: str = "",
) -> str:
    """Render ``y(x)`` as an ASCII scatter/line chart.

    Parameters
    ----------
    x, y:
        Equal-length 1-D data arrays.
    width, height:
        Character-grid size (axes excluded).
    marker:
        Data-point character.
    hline:
        Optional horizontal reference line (e.g. the unit threshold).
    title:
        Optional heading.

    Returns
    -------
    str
        Multi-line chart with y-axis labels and an x-range footer.
    """
    ensure_positive_int(width, "width")
    ensure_positive_int(height, "height")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("x and y must be equal-length arrays with >= 2 points")

    y_min = float(min(y.min(), hline if hline is not None else y.min()))
    y_max = float(max(y.max(), hline if hline is not None else y.max()))
    if y_max <= y_min:
        y_max = y_min + 1.0
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad

    grid = [[" "] * width for _ in range(height)]

    def row_of(value: float) -> int:
        frac = (value - y_min) / (y_max - y_min)
        return int(round((height - 1) * (1.0 - frac)))

    if hline is not None:
        r = row_of(hline)
        if 0 <= r < height:
            grid[r] = ["-"] * width

    x_min, x_max = float(x.min()), float(x.max())
    for xi, yi in zip(x, y):
        col = int(round((width - 1) * (xi - x_min) / (x_max - x_min)))
        r = row_of(float(yi))
        if 0 <= r < height and 0 <= col < width:
            grid[r][col] = marker

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        label = y_min + frac * (y_max - y_min)
        lines.append(f"{label:>9.3f} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':>10} {x_min:<12.4g}{'':^{max(0, width - 26)}}{x_max:>12.4g}")
    return "\n".join(lines)


def sigma_plot(
    model: ModelLike,
    freqs_rad,
    *,
    width: int = 72,
    height: int = 16,
    mark_bands: Sequence[Tuple[float, float]] = (),
) -> str:
    """ASCII sweep of ``sigma_max(H(j w))`` with the unit threshold line.

    Parameters
    ----------
    model:
        The macromodel to sweep.
    freqs_rad:
        Frequency grid (rad/s).
    width, height:
        Chart size.
    mark_bands:
        Violation bands to annotate under the chart.
    """
    freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
    responses = model.frequency_response(freqs_rad)
    sigma = np.linalg.svd(responses, compute_uv=False)[:, 0]
    chart = ascii_series(
        freqs_rad,
        sigma,
        width=width,
        height=height,
        hline=1.0,
        title="sigma_max(H(jw))   (---- = unit threshold)",
    )
    if mark_bands:
        notes = ", ".join(f"[{lo:.4g}, {hi:.4g}]" for lo, hi in mark_bands)
        chart += f"\nviolation bands: {notes}"
    return chart
