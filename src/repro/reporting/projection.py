"""Multicore speedup projection from work counters.

The reproduction substitutes the paper's 16-core C/OpenMP testbed with
CPython threads, whose wall-clock overlap is limited by the GIL (and by
the host's core count — the reference container has a single core).  The
scheduler's behaviour is nevertheless fully observable in the work
counters, so the speedup a T-core machine would achieve is *projected*:

* ``eta_ideal = T * W_1 / W_T`` — perfect overlap of the parallel run's
  total work across T cores.  Exceeds T exactly when the dynamic scheduler
  eliminated enough tentative shifts that ``W_T < W_1`` — the paper's
  superlinear effect.
* ``eta_makespan = W_1 / makespan_T`` — a greedy list-scheduling simulation
  that assigns the recorded per-shift work to T workers in completion
  order; this captures tail-idle effects (the paper's sub-ideal cases) and
  is the fairer of the two.

Both are dimensionless ratios of work units, so they are independent of
the host's absolute speed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.results import SolveResult
from repro.utils.validation import ensure_positive_int

__all__ = ["simulate_makespan", "SpeedupProjection", "project_speedup"]


def simulate_makespan(durations: Sequence[float], num_workers: int) -> float:
    """Greedy list-scheduling makespan of ``durations`` on ``num_workers``.

    Tasks are assigned in the given order, each to the earliest-available
    worker (the classical online list-scheduling model, which is how the
    work-queue driver actually behaves).

    Returns
    -------
    float
        The completion time of the last task (0.0 for no tasks).
    """
    num_workers = ensure_positive_int(num_workers, "num_workers")
    if not durations:
        return 0.0
    free_at = [0.0] * num_workers
    heapq.heapify(free_at)
    finish = 0.0
    for duration in durations:
        if duration < 0:
            raise ValueError(f"negative task duration {duration}")
        start = heapq.heappop(free_at)
        end = start + float(duration)
        finish = max(finish, end)
        heapq.heappush(free_at, end)
    return finish


@dataclass(frozen=True)
class SpeedupProjection:
    """Projected multicore speedups for one serial/parallel result pair.

    Attributes
    ----------
    work_serial, work_parallel:
        Total operator applications of the two runs.
    eta_ideal:
        ``T * W_1 / W_T`` (perfect overlap).
    eta_makespan:
        ``W_1 / makespan(per-shift work, T)`` (tail-idle aware).
    num_threads:
        The projection target T.
    """

    work_serial: int
    work_parallel: int
    eta_ideal: float
    eta_makespan: float
    num_threads: int


def project_speedup(
    serial: SolveResult, parallel: SolveResult, num_threads: int
) -> SpeedupProjection:
    """Project the T-core speedup of ``parallel`` relative to ``serial``.

    Parameters
    ----------
    serial:
        A single-thread reference result (its total work is ``W_1``).
    parallel:
        The result of the dynamic-scheduler run whose per-shift work is
        replayed onto T simulated cores.
    num_threads:
        The projection target (usually ``parallel.num_threads``).
    """
    w1 = serial.work.get("operator_applies", 0)
    wt = parallel.work.get("operator_applies", 0)
    durations = [rec.result.applies for rec in parallel.shifts]
    # Applies not attributable to a shift (band estimation, etc.) are
    # spread implicitly: the makespan uses per-shift work only, while W_T
    # uses the full counter; both choices are stated in EXPERIMENTS.md.
    makespan = simulate_makespan(durations, num_threads)
    return SpeedupProjection(
        work_serial=int(w1),
        work_parallel=int(wt),
        eta_ideal=(num_threads * w1 / wt) if wt else float("inf"),
        eta_makespan=(w1 / makespan) if makespan > 0 else float("inf"),
        num_threads=int(num_threads),
    )
