"""Row containers and ASCII formatting for Table I and Fig. 6.

The formatting mirrors the paper's layout so a reproduction run can be
eyeballed against the original table; two extra columns report the
*work-based* speedup and the number of eliminated shifts, which are the
platform-independent signals of the dynamic scheduler (see the
substitution notes in DESIGN.md: wall-clock speedup in CPython is
attenuated by the GIL, work-based speedup is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["Table1Row", "Fig6Point", "format_table1", "format_fig6"]


@dataclass(frozen=True)
class Table1Row:
    """One measured row of the reproduced Table I.

    Attributes
    ----------
    case_name:
        "Case 1" ... "Case 12".
    order, ports:
        Model size (n, p) — identical to the paper by construction.
    nlambda:
        Measured number of imaginary Hamiltonian eigenvalues.
    tau1:
        Serial (bisection) wall time, seconds.
    tau_t_mean, tau_t_max:
        Mean and worst-case parallel wall time over the repeats.
    eta_wall:
        Wall-clock speedup ``tau1 / tau_t_mean``.
    eta_work:
        Work speedup ``W_1 / W_T`` (operator applications), the
        GIL-independent analogue of the paper's speedup factor.
    eta_proj:
        Projected T-core speedup from the makespan simulation
        (:mod:`repro.reporting.projection`) — the column to compare with
        the paper's ``eta_16``.
    shifts, eliminated:
        Shifts processed / tentative shifts eliminated by the dynamic
        scheduler in the parallel run.
    paper_nlambda, paper_eta:
        Reference values from the paper for side-by-side reading.
    """

    case_name: str
    order: int
    ports: int
    nlambda: int
    tau1: float
    tau_t_mean: float
    tau_t_max: float
    eta_wall: float
    eta_work: float
    eta_proj: float
    shifts: int
    eliminated: int
    paper_nlambda: Optional[int] = None
    paper_eta: Optional[float] = None


def format_table1(rows: Sequence[Table1Row], num_threads: int) -> str:
    """Render measured rows in the layout of the paper's Table I."""
    header = (
        f"{'Case':<8}{'n':>6}{'p':>5}{'Nl':>5}{'tau1[s]':>10}"
        f"{f'tau{num_threads}[s]':>10}{f'tau{num_threads}max':>10}"
        f"{'eta_wall':>10}{'eta_work':>10}{'eta_proj':>10}"
        f"{'shifts':>8}{'elim':>6}"
        f"{'Nl(pap)':>9}{'eta(pap)':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.case_name:<8}{row.order:>6}{row.ports:>5}{row.nlambda:>5}"
            f"{row.tau1:>10.3f}{row.tau_t_mean:>10.3f}{row.tau_t_max:>10.3f}"
            f"{row.eta_wall:>10.3f}{row.eta_work:>10.3f}{row.eta_proj:>10.3f}"
            f"{row.shifts:>8}{row.eliminated:>6}"
            f"{(str(row.paper_nlambda) if row.paper_nlambda is not None else '-'):>9}"
            f"{(f'{row.paper_eta:.3f}' if row.paper_eta is not None else '-'):>10}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class Fig6Point:
    """One point of the Fig. 6 speedup-vs-threads curve.

    Attributes
    ----------
    threads:
        Thread count ``t``.
    eta_wall_mean, eta_wall_std:
        Mean/std of the wall-clock speedup ``tau_1 / tau_t`` over repeats.
    eta_work_mean, eta_work_std:
        Mean/std of the work-based speedup ``W_1 / W_t``.
    eta_proj_mean, eta_proj_std:
        Mean/std of the projected t-core speedup (makespan simulation) —
        the series to compare with the paper's Fig. 6 curve.
    """

    threads: int
    eta_wall_mean: float
    eta_wall_std: float
    eta_work_mean: float
    eta_work_std: float
    eta_proj_mean: float
    eta_proj_std: float


def format_fig6(points: Sequence[Fig6Point]) -> str:
    """Render the Fig. 6 series (plus an ASCII bar plot of eta_work)."""
    header = (
        f"{'t':>4}{'eta_wall':>12}{'std':>9}{'eta_work':>12}{'std':>9}"
        f"{'eta_proj':>12}{'std':>9}{'ideal':>8}"
    )
    lines = [header, "-" * len(header)]
    max_eta = max((p.eta_proj_mean for p in points), default=1.0)
    for point in points:
        lines.append(
            f"{point.threads:>4}{point.eta_wall_mean:>12.3f}"
            f"{point.eta_wall_std:>9.3f}{point.eta_work_mean:>12.3f}"
            f"{point.eta_work_std:>9.3f}{point.eta_proj_mean:>12.3f}"
            f"{point.eta_proj_std:>9.3f}{point.threads:>8}"
        )
    lines.append("")
    lines.append("projected speedup (x = ideal):")
    scale = 48.0 / max(max_eta, max(p.threads for p in points), 1.0)
    for point in points:
        bar = "#" * max(1, int(round(point.eta_proj_mean * scale)))
        ideal_pos = int(round(point.threads * scale))
        bar_chars = list(bar.ljust(ideal_pos + 1))
        if 0 <= ideal_pos < len(bar_chars):
            bar_chars[ideal_pos] = "x"
        lines.append(f"{point.threads:>4} |{''.join(bar_chars)}")
    return "\n".join(lines)
