"""Experiment drivers and table formatting for the paper's evaluation.

* :mod:`repro.reporting.tables` -- row containers and ASCII formatting in
  the layout of the paper's Table I and Fig. 6;
* :mod:`repro.reporting.table1` -- the Table I driver
  (``python -m repro.reporting.table1``);
* :mod:`repro.reporting.fig6` -- the Fig. 6 thread-scaling driver
  (``python -m repro.reporting.fig6``);
* :mod:`repro.reporting.sweepcheck` -- batched dense-sweep cross-validation
  of solver crossing sets (``--validate-points`` in both drivers).
"""

from repro.reporting.sweepcheck import SweepCheck, sweep_crossing_check
from repro.reporting.tables import (
    Fig6Point,
    Table1Row,
    format_fig6,
    format_table1,
)

__all__ = [
    "Table1Row",
    "Fig6Point",
    "format_table1",
    "format_fig6",
    "SweepCheck",
    "sweep_crossing_check",
]
