"""Touchstone v1 writer.

Emits the same subset the reader consumes: one option line, RI/MA/DB
formats, standard units, wrapped records (four complex values per line),
and the 2-port column-major quirk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.touchstone.reader import _FORMATS, _UNIT_SCALE
from repro.utils.validation import ensure_positive_float

__all__ = ["format_touchstone", "write_touchstone"]


def _encode(value: complex, fmt: str) -> tuple:
    if fmt == "RI":
        return (value.real, value.imag)
    mag = abs(value)
    ang = np.rad2deg(np.angle(value))
    if fmt == "MA":
        return (mag, ang)
    if fmt == "DB":
        db = 20.0 * np.log10(mag) if mag > 0 else -400.0
        return (db, ang)
    raise ValueError(f"unknown number format {fmt!r}")


def format_touchstone(
    freqs_hz,
    matrices,
    *,
    parameter: str = "S",
    fmt: str = "RI",
    unit: str = "HZ",
    z0: float = 50.0,
    comment: str = "",
) -> str:
    """Render samples as Touchstone v1 text.

    Parameters
    ----------
    freqs_hz:
        Strictly increasing frequencies in Hz.
    matrices:
        Samples, shape ``(K, p, p)`` complex.
    parameter:
        Parameter type letter for the option line.
    fmt:
        ``"RI"`` (default, lossless round-trip), ``"MA"``, or ``"DB"``.
    unit:
        Frequency unit for the option line (HZ/KHZ/MHZ/GHZ).
    z0:
        Reference resistance.
    comment:
        Optional leading comment (may span lines; each gets a ``!``).

    Returns
    -------
    str
        File contents.
    """
    fmt = fmt.upper()
    unit = unit.upper()
    if fmt not in _FORMATS:
        raise ValueError(f"unknown format {fmt!r}; expected one of {_FORMATS}")
    if unit not in _UNIT_SCALE:
        raise ValueError(f"unknown unit {unit!r}")
    ensure_positive_float(z0, "z0")
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    matrices = np.asarray(matrices, dtype=complex)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise ValueError(f"matrices must have shape (K, p, p), got {matrices.shape}")
    if matrices.shape[0] != freqs_hz.size:
        raise ValueError(
            f"got {matrices.shape[0]} matrices but {freqs_hz.size} frequencies"
        )
    if freqs_hz.size > 1 and np.any(np.diff(freqs_hz) <= 0):
        raise ValueError("frequencies must be strictly increasing")
    p = matrices.shape[1]
    scale = _UNIT_SCALE[unit]

    lines = []
    for comment_line in comment.splitlines():
        lines.append(f"! {comment_line}")
    lines.append(f"# {unit} {parameter.upper()} {fmt} R {z0:g}")
    for freq, matrix in zip(freqs_hz, matrices):
        if p == 2:
            entries = matrix.T.ravel()  # spec quirk: S11 S21 S12 S22
        else:
            entries = matrix.ravel()
        pieces = [f"{freq / scale:.12g}"]
        per_line = 0
        row = []
        for value in entries:
            a, b = _encode(complex(value), fmt)
            row.append(f"{a:.12g} {b:.12g}")
            per_line += 1
            if per_line == 4:  # spec: at most four complex values per line
                pieces.append("  ".join(row))
                row = []
                per_line = 0
        if row:
            pieces.append("  ".join(row))
        lines.append(pieces[0] + " " + pieces[1] if len(pieces) > 1 else pieces[0])
        lines.extend(pieces[2:])
    return "\n".join(lines) + "\n"


def write_touchstone(
    path: Union[str, Path],
    freqs_hz,
    matrices,
    **kwargs,
) -> Path:
    """Write samples to a Touchstone file; returns the path."""
    path = Path(path)
    text = format_touchstone(freqs_hz, matrices, **kwargs)
    with open(path, "w") as handle:
        handle.write(text)
    return path
