"""Touchstone v1 parser.

Supported subset (the universally used core of the format):

* option line ``# <unit> <parameter> <format> R <resistance>`` with
  defaults ``GHZ S MA R 50`` per the specification;
* frequency units HZ / KHZ / MHZ / GHZ;
* parameter types S, Y, Z (stored as-is; the type is reported);
* number formats RI (real/imag), MA (magnitude/angle-degrees),
  DB (dB-magnitude/angle-degrees);
* comment lines (``!``) and trailing comments;
* records wrapped over multiple lines (the spec allows at most four
  complex values per line, so any ``p > 2`` file wraps);
* the 2-port ordering quirk: for ``p == 2`` the four values of a record
  are ``S11 S21 S12 S22`` (column-major), while all other sizes are
  row-major.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

__all__ = ["TouchstoneData", "parse_touchstone", "read_touchstone"]

_UNIT_SCALE = {"HZ": 1.0, "KHZ": 1e3, "MHZ": 1e6, "GHZ": 1e9}
_PARAMETERS = ("S", "Y", "Z", "G", "H")
_FORMATS = ("RI", "MA", "DB")


@dataclass(frozen=True)
class TouchstoneData:
    """Contents of a Touchstone file.

    Attributes
    ----------
    freqs_hz:
        Sample frequencies in Hz, strictly increasing.
    matrices:
        Parameter samples, shape ``(K, p, p)`` complex.
    parameter:
        Parameter type from the option line ("S", "Y", "Z", ...).
    z0:
        Reference resistance in ohms.
    num_ports:
        Port count ``p``.
    """

    freqs_hz: np.ndarray
    matrices: np.ndarray
    parameter: str
    z0: float

    @property
    def num_ports(self) -> int:
        """Port count p."""
        return int(self.matrices.shape[1])

    @property
    def freqs_rad(self) -> np.ndarray:
        """Angular frequencies in rad/s."""
        return 2.0 * np.pi * self.freqs_hz


def _ports_from_suffix(name: str) -> Optional[int]:
    """Extract the port count from an ``.sNp`` file suffix, if present."""
    match = re.search(r"\.s(\d+)p$", name.lower())
    if match:
        return int(match.group(1))
    return None


def _convert(values: np.ndarray, fmt: str) -> np.ndarray:
    """Convert (a, b) value pairs to complex numbers per the format."""
    a = values[0::2]
    b = values[1::2]
    if fmt == "RI":
        return a + 1j * b
    if fmt == "MA":
        return a * np.exp(1j * np.deg2rad(b))
    if fmt == "DB":
        return 10.0 ** (a / 20.0) * np.exp(1j * np.deg2rad(b))
    raise ValueError(f"unknown number format {fmt!r}")


def parse_touchstone(text: str, *, num_ports: Optional[int] = None) -> TouchstoneData:
    """Parse Touchstone file contents.

    Parameters
    ----------
    text:
        Full file contents.
    num_ports:
        Port count; required when it cannot be inferred (parsing from a
        string without a filename).  When omitted the parser infers it
        from the record length of the data itself.

    Raises
    ------
    ValueError
        On malformed option lines, inconsistent record lengths, or
        unsupported constructs.
    """
    unit = "GHZ"
    parameter = "S"
    fmt = "MA"
    z0 = 50.0
    saw_option = False

    numbers: List[float] = []
    for raw_line in text.splitlines():
        line = raw_line.split("!", 1)[0].strip()
        if not line:
            continue
        if line.startswith("#"):
            if saw_option:
                # The v1 spec allows only one option line; ignore repeats.
                continue
            saw_option = True
            tokens = line[1:].upper().split()
            i = 0
            while i < len(tokens):
                tok = tokens[i]
                if tok in _UNIT_SCALE:
                    unit = tok
                elif tok in _PARAMETERS:
                    parameter = tok
                elif tok in _FORMATS:
                    fmt = tok
                elif tok == "R":
                    if i + 1 >= len(tokens):
                        raise ValueError("option line: 'R' without a resistance value")
                    z0 = float(tokens[i + 1])
                    i += 1
                else:
                    raise ValueError(f"option line: unknown token {tok!r}")
                i += 1
            continue
        if line.startswith("["):
            raise ValueError(
                "Touchstone v2 keyword sections are not supported"
                f" (found {line.split()[0]})"
            )
        numbers.extend(float(tok) for tok in line.split())

    if not numbers:
        raise ValueError("no data records found")

    data = np.asarray(numbers, dtype=float)
    if num_ports is None:
        num_ports = _infer_ports(data)
    record_len = 1 + 2 * num_ports * num_ports
    if data.size % record_len:
        raise ValueError(
            f"data length {data.size} is not a multiple of the record length"
            f" {record_len} for {num_ports} ports"
        )
    records = data.reshape(-1, record_len)
    freqs = records[:, 0] * _UNIT_SCALE[unit]
    if np.any(np.diff(freqs) <= 0):
        raise ValueError("frequencies must be strictly increasing")

    k = records.shape[0]
    matrices = np.empty((k, num_ports, num_ports), dtype=complex)
    for i in range(k):
        entries = _convert(records[i, 1:], fmt)
        if num_ports == 2:
            # Spec quirk: 2-port data is S11 S21 S12 S22 (column-major).
            matrices[i] = entries.reshape(2, 2).T
        else:
            matrices[i] = entries.reshape(num_ports, num_ports)
    return TouchstoneData(
        freqs_hz=freqs, matrices=matrices, parameter=parameter, z0=z0
    )


def _infer_ports(data: np.ndarray) -> int:
    """Infer the port count from the total number count.

    Works when the file holds at least two records: the record length is
    the smallest ``1 + 2 p^2`` dividing the data size with consistent,
    increasing frequencies.
    """
    total = data.size
    for p in range(1, 65):
        record_len = 1 + 2 * p * p
        if total % record_len:
            continue
        k = total // record_len
        freqs = data.reshape(k, record_len)[:, 0]
        if k == 1 or np.all(np.diff(freqs) > 0):
            return p
    raise ValueError("could not infer the port count from the data layout")


def read_touchstone(
    path: Union[str, Path], *, num_ports: Optional[int] = None
) -> TouchstoneData:
    """Read a Touchstone file from disk.

    The port count is taken from the ``.sNp`` suffix when present,
    otherwise inferred from the data layout (or given explicitly).
    """
    path = Path(path)
    if num_ports is None:
        num_ports = _ports_from_suffix(path.name)
    with open(path, "r") as handle:
        return parse_touchstone(handle.read(), num_ports=num_ports)
