"""Touchstone (SnP) scattering-parameter file I/O.

The paper's workflow starts from "frequency samples of the scattering
matrix ... either via electromagnetic simulation or direct measurement" —
in practice, Touchstone files.  This subpackage reads and writes
Touchstone v1 files (``.s1p``/``.s2p``/``.sNp``) with the RI/MA/DB number
formats, the standard frequency units, and the 2-port column-ordering
quirk of the specification.
"""

from repro.touchstone.reader import TouchstoneData, read_touchstone, parse_touchstone
from repro.touchstone.writer import format_touchstone, write_touchstone

__all__ = [
    "TouchstoneData",
    "read_touchstone",
    "parse_touchstone",
    "write_touchstone",
    "format_touchstone",
]
