"""Adaptive-sampling passivity characterization (the ref. [17] baseline).

Before Hamiltonian methods became standard, passivity was checked by
sampling singular values on a frequency grid and refining adaptively.  The
paper cites this approach (S. Grivet-Talocia, "An adaptive sampling
technique for passivity characterization and enforcement of large
interconnect macromodels", IEEE Trans. Adv. Packaging, 2007) as prior
art; this module implements the core idea so the benchmark suite can
contrast it with the exact Hamiltonian test:

* start from a coarse grid on ``[0, omega_max]``;
* recursively bisect every interval whose endpoints' singular-value
  *vectors* differ by more than a tolerance (fast variation means the
  interval may hide a crossing) or that straddle the unit threshold;
* report the violation intervals found.

Refinement proceeds in *generational waves*: every interval that needs a
midpoint contributes that midpoint to one batched ``transfer_many`` +
stacked-SVD evaluation per generation, so the per-point cost is a
vectorized O(n p) kernel rather than a Python-level loop.  Because the
refine/skip decision for an interval depends only on that interval's own
endpoints, the fully-refined sample set is identical to the historical
one-point-at-a-time recursion whenever the evaluation budget is not
binding.

The method is *heuristic*: a violation narrower than the refinement limit
can be missed — exactly the failure mode the algebraic Hamiltonian
characterization eliminates.  The sampling-vs-Hamiltonian ablation
benchmark demonstrates this on high-Q models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.passivity.metrics import sigma_max_many as _sigma_max_batch
from repro.utils.validation import (
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["SamplingReport", "sampled_violations"]

ModelLike = Union[PoleResidueModel, SimoRealization]


@dataclass(frozen=True)
class SamplingReport:
    """Outcome of the adaptive-sampling characterization.

    Attributes
    ----------
    passive:
        True when no sampled point exceeded the threshold.  Unlike the
        Hamiltonian test this is **not** a certificate — narrow violations
        below the refinement limit are invisible.
    violations:
        Merged intervals ``(lo, hi)`` where sampled points violate.
    evaluations:
        Number of transfer-matrix evaluations spent (the cost measure to
        compare against the eigensolver's operator applies).
    max_sigma:
        Largest singular value seen.
    """

    passive: bool
    violations: Tuple[Tuple[float, float], ...]
    evaluations: int
    max_sigma: float


def sampled_violations(
    model: ModelLike,
    omega_max: float,
    *,
    threshold: float = 1.0,
    initial_points: int = 64,
    variation_tol: float = 0.05,
    min_interval: float = 1e-6,
    max_evaluations: int = 200_000,
    seed_resonances: bool = True,
) -> SamplingReport:
    """Adaptively sample ``sigma_max(H(j w))`` and locate violations.

    Parameters
    ----------
    model:
        The macromodel to test.
    omega_max:
        Upper edge of the scanned band.
    threshold:
        Violation threshold on the largest singular value.
    initial_points:
        Coarse starting grid size.
    variation_tol:
        Refine an interval when the endpoint singular values differ by
        more than this (absolute, on the sigma scale).
    min_interval:
        Refinement stops below this width (relative to ``omega_max``);
        violations narrower than this can be missed.
    max_evaluations:
        Hard budget on transfer evaluations, enforced during initial-grid
        seeding as well as refinement (an oversized ``initial_points`` is
        evenly subsampled down to the budget instead of overrunning it).
    seed_resonances:
        Seed the initial grid with the model's resonance frequencies (the
        structure-aware strategy of ref. [17]).  With ``False`` the scan
        is blind — the mode the Hamiltonian-vs-sampling ablation uses to
        demonstrate missed high-Q violations.

    Returns
    -------
    SamplingReport
    """
    ensure_positive_float(omega_max, "omega_max")
    ensure_positive_int(initial_points, "initial_points")
    width_floor = min_interval * omega_max

    grid = np.linspace(0.0, omega_max, initial_points)
    if seed_resonances:
        if isinstance(model, SimoRealization):
            poles = model.poles()
        else:
            poles = model.poles
        resonant = poles[poles.imag > 0]
        if resonant.size:
            w0 = resonant.imag
            damping = np.abs(resonant.real)
            clusters = np.concatenate(
                [w0 + k * damping for k in (-1.0, 0.0, 1.0)]
            )
            clusters = clusters[(clusters >= 0.0) & (clusters <= omega_max)]
            grid = np.union1d(grid, clusters)
    # Enforce the budget during seeding too: an oversized initial grid
    # (large initial_points and/or heavy resonance seeding) is evenly
    # subsampled so the coarse scan keeps full-band coverage without ever
    # exceeding max_evaluations.
    if grid.size > max_evaluations:
        keep = np.unique(
            np.round(np.linspace(0, grid.size - 1, max(2, max_evaluations))).astype(
                np.intp
            )
        )
        grid = grid[keep]

    values = _sigma_max_batch(model, grid)
    evaluations = int(grid.size)

    sample_freqs: List[np.ndarray] = [grid]
    sample_sigmas: List[np.ndarray] = [values]

    # Generational refinement: all intervals flagged for refinement emit
    # their midpoints into one batched evaluation per wave.
    lo, hi = grid[:-1], grid[1:]
    s_lo, s_hi = values[:-1], values[1:]
    while lo.size and evaluations < max_evaluations:
        needs_refine = (hi - lo > width_floor) & (
            (np.abs(s_hi - s_lo) > variation_tol)
            | ((s_lo - threshold) * (s_hi - threshold) < 0.0)
            | (np.maximum(s_lo, s_hi) > threshold - variation_tol)
        )
        lo, hi = lo[needs_refine], hi[needs_refine]
        s_lo, s_hi = s_lo[needs_refine], s_hi[needs_refine]
        if not lo.size:
            break
        remaining = max_evaluations - evaluations
        if lo.size > remaining:
            lo, hi = lo[:remaining], hi[:remaining]
            s_lo, s_hi = s_lo[:remaining], s_hi[:remaining]
        mid = 0.5 * (lo + hi)
        s_mid = _sigma_max_batch(model, mid)
        evaluations += int(mid.size)
        sample_freqs.append(mid)
        sample_sigmas.append(s_mid)
        # Each refined interval splits into its two halves for the next wave.
        lo, hi = np.concatenate([lo, mid]), np.concatenate([mid, hi])
        s_lo, s_hi = np.concatenate([s_lo, s_mid]), np.concatenate([s_mid, s_hi])

    freqs = np.concatenate(sample_freqs)
    sigmas = np.concatenate(sample_sigmas)
    order = np.argsort(freqs)
    freqs, sigmas = freqs[order], sigmas[order]

    # Merge consecutive violating samples into intervals (vectorized run
    # detection: an interval spans from the first violating sample to the
    # next non-violating one, or to the last sample at the band edge).
    violating = sigmas > threshold
    intervals: List[Tuple[float, float]] = []
    if violating.size and np.any(violating):
        padded = np.concatenate([[False], violating, [False]])
        edges = np.diff(padded.astype(np.int8))
        starts = np.nonzero(edges == 1)[0]
        ends = np.nonzero(edges == -1)[0]
        intervals = [
            (float(freqs[s]), float(freqs[min(e, freqs.size - 1)]))
            for s, e in zip(starts, ends)
        ]

    return SamplingReport(
        passive=not intervals,
        violations=tuple(intervals),
        evaluations=evaluations,
        max_sigma=float(sigmas.max()) if sigmas.size else 0.0,
    )
