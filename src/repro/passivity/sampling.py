"""Adaptive-sampling passivity characterization (the ref. [17] baseline).

Before Hamiltonian methods became standard, passivity was checked by
sampling singular values on a frequency grid and refining adaptively.  The
paper cites this approach (S. Grivet-Talocia, "An adaptive sampling
technique for passivity characterization and enforcement of large
interconnect macromodels", IEEE Trans. Adv. Packaging, 2007) as prior
art; this module implements the core idea so the benchmark suite can
contrast it with the exact Hamiltonian test:

* start from a coarse grid on ``[0, omega_max]``;
* recursively bisect every interval whose endpoints' singular-value
  *vectors* differ by more than a tolerance (fast variation means the
  interval may hide a crossing) or that straddle the unit threshold;
* report the violation intervals found.

The method is *heuristic*: a violation narrower than the refinement limit
can be missed — exactly the failure mode the algebraic Hamiltonian
characterization eliminates.  The sampling-vs-Hamiltonian ablation
benchmark demonstrates this on high-Q models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.utils.validation import (
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["SamplingReport", "sampled_violations"]

ModelLike = Union[PoleResidueModel, SimoRealization]


@dataclass(frozen=True)
class SamplingReport:
    """Outcome of the adaptive-sampling characterization.

    Attributes
    ----------
    passive:
        True when no sampled point exceeded the threshold.  Unlike the
        Hamiltonian test this is **not** a certificate — narrow violations
        below the refinement limit are invisible.
    violations:
        Merged intervals ``(lo, hi)`` where sampled points violate.
    evaluations:
        Number of transfer-matrix evaluations spent (the cost measure to
        compare against the eigensolver's operator applies).
    max_sigma:
        Largest singular value seen.
    """

    passive: bool
    violations: Tuple[Tuple[float, float], ...]
    evaluations: int
    max_sigma: float


def sampled_violations(
    model: ModelLike,
    omega_max: float,
    *,
    threshold: float = 1.0,
    initial_points: int = 64,
    variation_tol: float = 0.05,
    min_interval: float = 1e-6,
    max_evaluations: int = 200_000,
    seed_resonances: bool = True,
) -> SamplingReport:
    """Adaptively sample ``sigma_max(H(j w))`` and locate violations.

    Parameters
    ----------
    model:
        The macromodel to test.
    omega_max:
        Upper edge of the scanned band.
    threshold:
        Violation threshold on the largest singular value.
    initial_points:
        Coarse starting grid size.
    variation_tol:
        Refine an interval when the endpoint singular values differ by
        more than this (absolute, on the sigma scale).
    min_interval:
        Refinement stops below this width (relative to ``omega_max``);
        violations narrower than this can be missed.
    max_evaluations:
        Hard budget on transfer evaluations.
    seed_resonances:
        Seed the initial grid with the model's resonance frequencies (the
        structure-aware strategy of ref. [17]).  With ``False`` the scan
        is blind — the mode the Hamiltonian-vs-sampling ablation uses to
        demonstrate missed high-Q violations.

    Returns
    -------
    SamplingReport
    """
    ensure_positive_float(omega_max, "omega_max")
    ensure_positive_int(initial_points, "initial_points")
    width_floor = min_interval * omega_max

    evaluations = 0

    def sigma_at(w: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return float(np.linalg.svd(model.transfer(1j * w), compute_uv=False)[0])

    grid = np.linspace(0.0, omega_max, initial_points)
    if seed_resonances:
        if isinstance(model, SimoRealization):
            poles = model.poles()
        else:
            poles = model.poles
        resonant = poles[poles.imag > 0]
        if resonant.size:
            w0 = resonant.imag
            damping = np.abs(resonant.real)
            clusters = np.concatenate(
                [w0 + k * damping for k in (-1.0, 0.0, 1.0)]
            )
            clusters = clusters[(clusters >= 0.0) & (clusters <= omega_max)]
            grid = np.union1d(grid, clusters)
    grid = list(grid)
    values = [sigma_at(w) for w in grid]

    # Worklist of (lo, hi, sigma_lo, sigma_hi) intervals to examine.
    stack: List[Tuple[float, float, float, float]] = [
        (grid[i], grid[i + 1], values[i], values[i + 1])
        for i in range(len(grid) - 1)
    ]
    samples: List[Tuple[float, float]] = list(zip(grid, values))

    while stack and evaluations < max_evaluations:
        lo, hi, s_lo, s_hi = stack.pop()
        if hi - lo <= width_floor:
            continue
        needs_refine = (
            abs(s_hi - s_lo) > variation_tol
            or (s_lo - threshold) * (s_hi - threshold) < 0.0
            or max(s_lo, s_hi) > threshold - variation_tol
        )
        if not needs_refine:
            continue
        mid = 0.5 * (lo + hi)
        s_mid = sigma_at(mid)
        samples.append((mid, s_mid))
        stack.append((lo, mid, s_lo, s_mid))
        stack.append((mid, hi, s_mid, s_hi))

    samples.sort()
    freqs = np.array([w for w, _ in samples])
    sigmas = np.array([s for _, s in samples])

    # Merge consecutive violating samples into intervals.
    violating = sigmas > threshold
    intervals: List[Tuple[float, float]] = []
    start = None
    for i, flag in enumerate(violating):
        if flag and start is None:
            start = freqs[i]
        elif not flag and start is not None:
            intervals.append((float(start), float(freqs[i])))
            start = None
    if start is not None:
        intervals.append((float(start), float(freqs[-1])))

    return SamplingReport(
        passive=not intervals,
        violations=tuple(intervals),
        evaluations=evaluations,
        max_sigma=float(sigmas.max()) if sigmas.size else 0.0,
    )
