"""Iterative passivity enforcement by first-order residue perturbation.

This implements the standard perturbation loop referenced by the paper
(refs [8], [17]): the Hamiltonian characterization locates the violation
bands; inside each band the singular-value peak ``sigma*`` at frequency
``w*`` comes with left/right singular vectors ``u, v``; to first order a
residue perturbation ``Delta R_m`` moves the peak by

.. math::

    \\delta\\sigma = \\mathrm{Re}\\Big( u^H \\Big(
        \\sum_m \\frac{\\Delta R_m}{j w^* - p_m} \\Big) v \\Big),

which is *linear* in the perturbation.  Collecting one such constraint per
band peak (targeting ``sigma* -> 1 - margin``) gives a small
underdetermined linear system; the minimum-Frobenius-norm solution keeps
the model as close as possible to the original — the accuracy-preservation
rationale of the perturbation approach.  The loop repeats (violations can
shift or split) until the Hamiltonian test certifies passivity.

The direct term is handled separately and up front:
:func:`clip_direct_term` projects ``D`` onto ``sigma(D) <= 1 - margin``
by singular-value clipping, establishing the strict asymptotic condition
(eq. 4) the Hamiltonian test requires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import RunConfig, require_full_axis, require_scattering
from repro.core.options import SolverOptions
from repro.macromodel.poles import partition_poles
from repro.macromodel.rational import PoleResidueModel
from repro.obs import trace as _obs_trace
from repro.obs.metrics import get_registry as _obs_metrics
from repro.passivity.characterization import (
    PassivityReport,
    characterize_passivity,
)
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_in_range, ensure_positive_int

__all__ = ["clip_direct_term", "enforce_passivity", "EnforcementResult"]

_LOG = get_logger("enforcement")


def clip_direct_term(d: np.ndarray, *, max_sigma: float = 0.999) -> np.ndarray:
    """Project ``D`` onto the ball ``sigma_max(D) <= max_sigma``.

    Singular values above the cap are clipped; the rest of the matrix is
    untouched.  This enforces the strict asymptotic passivity condition
    (eq. 4) that both the Hamiltonian construction and the enforcement
    loop assume.
    """
    ensure_in_range(max_sigma, "max_sigma", 0.0, 1.0)
    d = np.asarray(d, dtype=float)
    if d.size == 0:
        return d.copy()
    u, s, vt = np.linalg.svd(d)
    if s.size == 0 or s[0] <= max_sigma:
        return d.copy()
    s = np.minimum(s, max_sigma)
    return u @ np.diag(s) @ vt


@dataclass(frozen=True)
class EnforcementResult:
    """Outcome of the enforcement loop.

    Attributes
    ----------
    model:
        The final (hopefully passive) model.
    passive:
        True when the final Hamiltonian test found no violations.
    iterations:
        Number of perturbation steps applied.
    history:
        Worst violation ``max(sigma) - 1`` before each step (and after the
        last), so tests can assert monotone-ish progress.
    perturbation_norm:
        Total Frobenius norm of the applied residue perturbation, a proxy
        for accuracy loss.
    reports:
        The passivity report after each characterization (first entry is
        the initial state).
    """

    model: PoleResidueModel
    passive: bool
    iterations: int
    history: Tuple[float, ...]
    perturbation_norm: float
    reports: Tuple[PassivityReport, ...]

    def to_dict(
        self, *, include_model: bool = True, include_solve: bool = False
    ) -> dict:
        """JSON-serializable dictionary of the enforcement outcome.

        Parameters
        ----------
        include_model:
            Embed the final model's pole/residue data (omit for compact
            telemetry payloads).
        include_solve:
            Forwarded to each report's ``to_dict``; the result store
            persists the ``include_solve=True`` form so :meth:`from_dict`
            rebuilds the per-iteration eigensolver provenance too.
        """
        payload = {
            "passive": bool(self.passive),
            "iterations": int(self.iterations),
            "history": [float(h) for h in self.history],
            "perturbation_norm": float(self.perturbation_norm),
            "reports": [
                report.to_dict(include_solve=include_solve)
                for report in self.reports
            ],
        }
        if include_model:
            payload["model"] = self.model.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EnforcementResult":
        """Rebuild an enforcement outcome from a :meth:`to_dict` payload.

        Requires a payload written with ``include_model=True`` (the final
        model *is* the result); reports rebuild with or without their
        embedded solve provenance.
        """
        return cls(
            model=PoleResidueModel.from_dict(payload["model"]),
            passive=bool(payload["passive"]),
            iterations=int(payload["iterations"]),
            history=tuple(float(h) for h in payload.get("history", [])),
            perturbation_norm=float(payload["perturbation_norm"]),
            reports=tuple(
                PassivityReport.from_dict(report)
                for report in payload.get("reports", [])
            ),
        )


def _peak_constraints(
    model: PoleResidueModel, report: PassivityReport, margin: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the linear system ``G x = b`` of peak displacement targets.

    Unknowns ``x`` parametrize the residue perturbation in real arithmetic
    while preserving conjugate symmetry: real poles contribute a real
    ``p x p`` block each; each conjugate pair contributes the real and
    imaginary parts of its upper-half representative (the partner is the
    conjugate implicitly).
    """
    p = model.num_ports
    poles = model.poles
    real_poles, pair_poles = partition_poles(poles)

    # Map parameter blocks: [real blocks (p^2 each)] + [pairs (2 p^2 each)].
    num_params = real_poles.size * p * p + pair_poles.size * 2 * p * p
    rows: List[np.ndarray] = []
    rhs: List[float] = []
    for band in report.bands:
        w = band.peak_freq
        h = model.transfer(1j * w)
        u_svd, s, vt = np.linalg.svd(h)
        u = u_svd[:, 0]
        v = vt[0, :].conj()
        # w_outer[i, j] = conj(u_i) v_j so that u^H Delta v = sum w * Delta.
        w_outer = np.outer(np.conj(u), v)
        row = np.zeros(num_params)
        offset = 0
        for pole in real_poles:
            c = 1.0 / (1j * w - pole)
            row[offset : offset + p * p] = np.real(w_outer * c).ravel()
            offset += p * p
        for pole in pair_poles:
            c_up = 1.0 / (1j * w - pole)
            c_dn = 1.0 / (1j * w - np.conj(pole))
            # Contribution Re[ x . (w c_up) + conj(x) . (w c_dn) ] with
            # x = xr + j xi:
            coeff_re = np.real(w_outer * (c_up + c_dn))
            coeff_im = -np.imag(w_outer * (c_up - c_dn))
            row[offset : offset + p * p] = coeff_re.ravel()
            row[offset + p * p : offset + 2 * p * p] = coeff_im.ravel()
            offset += 2 * p * p
        rows.append(row)
        rhs.append((1.0 - margin) - band.peak_sigma)
    return np.asarray(rows), np.asarray(rhs)


def _apply_parameters(
    model: PoleResidueModel, x: np.ndarray
) -> Tuple[PoleResidueModel, float]:
    """Turn a parameter vector back into a residue perturbation."""
    p = model.num_ports
    poles = model.poles
    real_poles, pair_poles = partition_poles(poles)
    delta = np.zeros_like(model.residues)
    used = np.zeros(poles.size, dtype=bool)
    offset = 0

    def _claim(target: complex) -> int:
        dist = np.where(used, np.inf, np.abs(poles - target))
        j = int(np.argmin(dist))
        used[j] = True
        return j

    for pole in real_poles:
        j = _claim(pole)
        delta[j] = x[offset : offset + p * p].reshape(p, p)
        offset += p * p
    for pole in pair_poles:
        j_up = _claim(pole)
        j_dn = _claim(np.conj(pole))
        block = (
            x[offset : offset + p * p] + 1j * x[offset + p * p : offset + 2 * p * p]
        ).reshape(p, p)
        delta[j_up] = block
        delta[j_dn] = np.conj(block)
        offset += 2 * p * p
    norm = float(np.linalg.norm(delta))
    return model.perturb_residues(delta), norm


def enforce_passivity(
    model: PoleResidueModel,
    *,
    margin: float = 0.002,
    max_iterations: int = 25,
    num_threads: int = 1,
    options: Optional[SolverOptions] = None,
    d_max_sigma: float = 0.999,
    config: Optional[RunConfig] = None,
    initial_report: Optional[PassivityReport] = None,
) -> EnforcementResult:
    """Perturb residues until the Hamiltonian test certifies passivity.

    Parameters
    ----------
    model:
        The (possibly non-passive) pole/residue macromodel.
    margin:
        Target distance below the unit threshold for perturbed peaks
        (peaks are pushed to ``1 - margin``).
    max_iterations:
        Maximum perturbation steps.
    num_threads:
        Threads for the embedded Hamiltonian characterizations.
    options:
        Eigensolver options.
    d_max_sigma:
        Cap applied to ``sigma(D)`` up front (eq. 4).
    config:
        A full :class:`~repro.core.config.RunConfig` for the embedded
        characterizations; supersedes ``num_threads`` / ``options``.
        Band-limited configs are rejected: the final verdict certifies
        the whole axis, so an in-band-only check would be unsound.
    initial_report:
        A :class:`PassivityReport` of ``model`` computed beforehand
        (e.g. by the facade's ``check_passivity``); reused for iteration
        0 instead of re-running the eigensweep.  Used only when the
        direct-term clipping left the model unchanged *and* the report
        shows violations — a passive seed is ignored so that every
        ``passive=True`` verdict this function returns is backed by its
        own full-axis characterization.

    Returns
    -------
    EnforcementResult
        ``result.passive`` reports success; ``result.model`` is the final
        model either way.

    Notes
    -----
    First-order steps can overshoot on strong violations; the loop uses
    the raw minimum-norm step and relies on re-characterization, which is
    robust in practice for the mild (few-percent) violations produced by
    rational fitting.  Models with much larger violations should be scaled
    or re-fitted first.
    """
    ensure_in_range(margin, "margin", 0.0, 0.5)
    ensure_positive_int(max_iterations, "max_iterations")
    if config is None:
        config = RunConfig.from_legacy(num_threads=num_threads, options=options)
    else:
        require_scattering(config, "passivity enforcement")
        require_full_axis(config, "passivity enforcement (a passivity certificate)")

    d_clipped = clip_direct_term(model.d, max_sigma=d_max_sigma)
    current = model.with_d(d_clipped)
    # The caller's pre-computed report stands in for iteration 0 only when
    # the direct-term clipping did not alter the model it was computed on,
    # and only when it reports violations: a passive seed would end the
    # loop without any sweep of our own, so the final passive=True verdict
    # would rest entirely on a report we cannot validate (it might have
    # been band-limited, or computed on a different model).  A non-passive
    # seed merely chooses the first perturbation targets; every passive
    # verdict below comes from a fresh full-axis characterization.
    if initial_report is not None and (
        initial_report.passive
        or initial_report.band_limited
        or not np.array_equal(d_clipped, model.d)
    ):
        initial_report = None
    total_norm = 0.0
    history: List[float] = []
    reports: List[PassivityReport] = []

    enforce_started = time.perf_counter()
    iterations = 0
    for iterations in range(max_iterations + 1):
        _obs_metrics().count("enforcement.iterations")
        # One trace span per enforcement step (re-characterization plus
        # the perturbation solve) — the per-iteration cost visibility
        # feeding the incremental-recertification roadmap item.
        with _obs_trace.span(
            "enforce.iteration", iteration=iterations
        ) as it_span:
            if iterations == 0 and initial_report is not None:
                report = initial_report
            else:
                report = characterize_passivity(current, config=config)
            reports.append(report)
            history.append(report.worst_violation)
            it_span.annotate(
                "worst_violation", float(report.worst_violation)
            )
            if report.passive:
                it_span.annotate("passive", True)
                _obs_metrics().observe(
                    "enforcement.run", time.perf_counter() - enforce_started
                )
                return EnforcementResult(
                    model=current,
                    passive=True,
                    iterations=iterations,
                    history=tuple(history),
                    perturbation_norm=total_norm,
                    reports=tuple(reports),
                )
            if iterations == max_iterations:
                break
            g, b = _peak_constraints(current, report, margin)
            if g.size == 0:
                break
            # Minimum-norm solution of the underdetermined system G x = b.
            x, *_ = np.linalg.lstsq(g, b, rcond=None)
            current, step_norm = _apply_parameters(current, x)
            total_norm += step_norm
            _LOG.debug(
                "enforcement step %d: %d band(s), worst %.3e, step norm %.3e",
                iterations + 1,
                len(report.bands),
                report.worst_violation,
                step_norm,
            )

    _obs_metrics().observe(
        "enforcement.run", time.perf_counter() - enforce_started
    )
    return EnforcementResult(
        model=current,
        passive=False,
        iterations=iterations,
        history=tuple(history),
        perturbation_norm=total_norm,
        reports=tuple(reports),
    )
