"""Passivity characterization for immittance (Y/Z/hybrid) representations.

Sec. II of the paper notes that "the same derivations can be performed for
the impedance, admittance, and hybrid cases".  For an immittance transfer
matrix, passivity (positive-realness) requires the Hermitian part
``G(j w) = H(j w) + H(j w)^H`` to be positive semidefinite at every
frequency; the purely imaginary eigenvalues of the immittance Hamiltonian
mark exactly the frequencies where an eigenvalue of ``G`` crosses zero.
This module turns those crossings into violation bands, mirroring the
scattering pipeline of :mod:`repro.passivity.characterization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.config import RunConfig
from repro.core.options import SolverOptions
from repro.core.results import SolveResult
from repro.core.solver import solve
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoRealization
from repro.utils.serialization import float_array_from_jsonable, to_jsonable

__all__ = [
    "ImmittanceViolationBand",
    "ImmittancePassivityReport",
    "characterize_immittance_passivity",
    "hermitian_min_eig",
    "hermitian_min_eig_many",
]

ModelLike = Union[PoleResidueModel, SimoRealization]


def hermitian_min_eig(model: ModelLike, omega: float) -> float:
    """Smallest eigenvalue of ``H(j w) + H(j w)^H`` at one frequency."""
    h = model.transfer(1j * float(omega))
    return float(np.linalg.eigvalsh(h + h.conj().T).min())


def hermitian_min_eig_many(model: ModelLike, omegas) -> np.ndarray:
    """Smallest eigenvalue of ``H(j w) + H(j w)^H`` at each frequency.

    One batched ``transfer_many`` evaluation plus one stacked
    ``numpy.linalg.eigvalsh`` over the ``(K, p, p)`` Hermitian parts —
    the multi-point companion of :func:`hermitian_min_eig` (frequencies
    need not be sorted).
    """
    omegas = np.asarray(omegas, dtype=float).reshape(-1)
    if omegas.size == 0:
        return np.empty(0, dtype=float)
    h = model.transfer_many(1j * omegas)
    hermitian = h + np.conj(np.swapaxes(h, -1, -2))
    return np.linalg.eigvalsh(hermitian)[:, 0]


@dataclass(frozen=True)
class ImmittanceViolationBand:
    """A band where the Hermitian part of ``H(j w)`` is indefinite.

    Attributes
    ----------
    lo, hi:
        Band edges (zero-crossing frequencies of ``eig(H + H^H)``).
    trough_freq:
        Frequency of the most negative eigenvalue inside the band.
    min_eig:
        The (negative) eigenvalue minimum attained there.
    """

    lo: float
    hi: float
    trough_freq: float
    min_eig: float

    @property
    def severity(self) -> float:
        """Violation depth: ``-min_eig`` (positive for true violations)."""
        return -self.min_eig

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of this violation band."""
        return {
            "lo": float(self.lo),
            "hi": float(self.hi),
            "trough_freq": float(self.trough_freq),
            "min_eig": float(self.min_eig),
            "severity": float(self.severity),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ImmittanceViolationBand":
        """Rebuild a band from a :meth:`to_dict` payload."""
        return cls(
            lo=float(payload["lo"]),
            hi=float(payload["hi"]),
            trough_freq=float(payload["trough_freq"]),
            min_eig=float(payload["min_eig"]),
        )


@dataclass(frozen=True)
class ImmittancePassivityReport:
    """Outcome of the immittance characterization.

    Attributes
    ----------
    passive:
        True when ``H + H^H`` stays positive semidefinite *on the swept
        band* — a whole-axis certificate only for the default full sweep
        (see ``band_limited``).
    crossings:
        Zero-crossing frequencies (the immittance Omega set).
    bands:
        Violation bands (empty when passive).
    solve:
        The underlying eigensolver result.
    band_limited:
        True when the sweep was user-restricted (``omega_min > 0`` or an
        explicit ``omega_max``), so ``passive`` is an in-band statement.
    """

    passive: bool
    crossings: np.ndarray
    bands: Tuple[ImmittanceViolationBand, ...]
    solve: Optional[SolveResult]
    band_limited: bool = False

    @property
    def worst_violation(self) -> float:
        """Deepest negative excursion (0.0 when passive)."""
        if not self.bands:
            return 0.0
        return max(band.severity for band in self.bands)

    def to_dict(self, *, include_solve: bool = False) -> dict:
        """JSON-serializable dictionary of the characterization outcome."""
        payload = {
            "passive": bool(self.passive),
            "band_limited": bool(self.band_limited),
            "crossings": to_jsonable(self.crossings),
            "bands": [band.to_dict() for band in self.bands],
            "worst_violation": float(self.worst_violation),
        }
        if self.solve is not None:
            payload["work"] = {str(k): int(v) for k, v in self.solve.work.items()}
            if include_solve:
                payload["solve"] = self.solve.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ImmittancePassivityReport":
        """Rebuild a report from a :meth:`to_dict` payload (the inverse
        used by the result store; see
        :meth:`repro.passivity.characterization.PassivityReport.from_dict`)."""
        solve = payload.get("solve")
        return cls(
            passive=bool(payload["passive"]),
            crossings=float_array_from_jsonable(payload["crossings"]),
            bands=tuple(
                ImmittanceViolationBand.from_dict(band)
                for band in payload.get("bands", [])
            ),
            solve=SolveResult.from_dict(solve) if solve is not None else None,
            band_limited=bool(payload.get("band_limited", False)),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        scope = ""
        if self.band_limited and self.solve is not None:
            scope = (
                f" in band [{self.solve.band[0]:.4g},"
                f" {self.solve.band[1]:.4g}] only"
            )
        elif self.band_limited:
            scope = " in the swept band only"
        if self.passive:
            return f"PASSIVE{scope} (H + H^H positive semidefinite on the band)"
        spans = ", ".join(
            f"[{b.lo:.4g}, {b.hi:.4g}] min eig {b.min_eig:.4g}" for b in self.bands
        )
        return f"NOT passive (immittance){scope}: {len(self.bands)} band(s): {spans}"


def _as_simo(model: ModelLike) -> SimoRealization:
    if isinstance(model, PoleResidueModel):
        return pole_residue_to_simo(model)
    if isinstance(model, SimoRealization):
        return model
    raise TypeError(
        f"expected PoleResidueModel or SimoRealization, got {type(model).__name__}"
    )


def _refine_trough(
    simo: SimoRealization, lo: float, hi: float, *, points: int = 33
) -> Tuple[float, float]:
    """Locate the minimum of ``eig_min(H + H^H)`` inside ``[lo, hi]``.

    The coarse scan is one batched eigenvalue sweep; only the golden-section
    polish evaluates points one at a time (it is inherently sequential).
    """
    grid = np.linspace(lo, hi, max(3, points))
    values = hermitian_min_eig_many(simo, grid)
    best = int(np.argmin(values))
    a = grid[max(0, best - 1)]
    b = grid[min(len(grid) - 1, best + 1)]
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = (float(v) for v in hermitian_min_eig_many(simo, [c, d]))
    for _ in range(40):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = hermitian_min_eig(simo, c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = hermitian_min_eig(simo, d)
        if b - a < 1e-12 * max(1.0, abs(b)):
            break
    w_best = c if fc < fd else d
    f_best = min(fc, fd)
    if values[best] < f_best:
        return float(grid[best]), float(values[best])
    return float(w_best), float(f_best)


def characterize_immittance_passivity(
    model: ModelLike,
    *,
    num_threads: int = 1,
    strategy: str = "auto",
    options: Optional[SolverOptions] = None,
    omega_max: Optional[float] = None,
    config: Optional[RunConfig] = None,
) -> ImmittancePassivityReport:
    """Full algebraic positive-realness characterization.

    Parameters
    ----------
    model:
        Immittance macromodel; ``D + D^T`` must be positive definite (the
        asymptotic condition playing the role of eq. 4).
    num_threads, strategy, options, omega_max:
        Forwarded to the eigensolver (ignored when ``config`` is given).
    config:
        A full :class:`~repro.core.config.RunConfig`; the representation
        is forced to ``"immittance"``.

    Returns
    -------
    ImmittancePassivityReport
    """
    if config is None:
        config = RunConfig.from_legacy(
            num_threads=num_threads,
            strategy=strategy,
            omega_max=omega_max,
            options=options,
        )
    config = config.merged(representation="immittance")
    simo = _as_simo(model)
    result = solve(simo, config)
    crossings = result.omegas
    bands: List[ImmittanceViolationBand] = []
    if crossings.size:
        # Segments below the swept band's lower edge were not swept and
        # are never classified (mirrors violation_bands_from_crossings).
        omega_lo = result.band[0]
        edges = ([omega_lo] if crossings[0] > omega_lo else []) + list(crossings)
        top = result.band[1]
        if top > edges[-1]:
            edges.append(top)
        # Classify all segments with one batched midpoint sweep.
        segments = [(lo, hi) for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]
        mid_eigs = hermitian_min_eig_many(
            simo, [0.5 * (lo + hi) for lo, hi in segments]
        )
        current_lo: Optional[float] = None
        for (lo, hi), mid_eig in zip(segments, mid_eigs):
            if mid_eig < 0.0:
                if current_lo is None:
                    current_lo = lo
            else:
                if current_lo is not None:
                    trough_w, trough_v = _refine_trough(simo, current_lo, lo)
                    bands.append(
                        ImmittanceViolationBand(current_lo, lo, trough_w, trough_v)
                    )
                    current_lo = None
        if current_lo is not None:
            trough_w, trough_v = _refine_trough(simo, current_lo, edges[-1])
            bands.append(
                ImmittanceViolationBand(current_lo, edges[-1], trough_w, trough_v)
            )
    return ImmittancePassivityReport(
        passive=len(bands) == 0,
        crossings=crossings,
        bands=tuple(bands),
        solve=result,
        band_limited=config.is_band_limited,
    )
