"""Passivity characterization for immittance (Y/Z/hybrid) representations.

Sec. II of the paper notes that "the same derivations can be performed for
the impedance, admittance, and hybrid cases".  For an immittance transfer
matrix, passivity (positive-realness) requires the Hermitian part
``G(j w) = H(j w) + H(j w)^H`` to be positive semidefinite at every
frequency; the purely imaginary eigenvalues of the immittance Hamiltonian
mark exactly the frequencies where an eigenvalue of ``G`` crosses zero.
This module turns those crossings into violation bands, mirroring the
scattering pipeline of :mod:`repro.passivity.characterization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.options import SolverOptions
from repro.core.results import SolveResult
from repro.core.solver import find_imaginary_eigenvalues
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoRealization

__all__ = [
    "ImmittanceViolationBand",
    "ImmittancePassivityReport",
    "characterize_immittance_passivity",
    "hermitian_min_eig",
]

ModelLike = Union[PoleResidueModel, SimoRealization]


def hermitian_min_eig(model: ModelLike, omega: float) -> float:
    """Smallest eigenvalue of ``H(j w) + H(j w)^H`` at one frequency."""
    h = model.transfer(1j * float(omega))
    return float(np.linalg.eigvalsh(h + h.conj().T).min())


@dataclass(frozen=True)
class ImmittanceViolationBand:
    """A band where the Hermitian part of ``H(j w)`` is indefinite.

    Attributes
    ----------
    lo, hi:
        Band edges (zero-crossing frequencies of ``eig(H + H^H)``).
    trough_freq:
        Frequency of the most negative eigenvalue inside the band.
    min_eig:
        The (negative) eigenvalue minimum attained there.
    """

    lo: float
    hi: float
    trough_freq: float
    min_eig: float

    @property
    def severity(self) -> float:
        """Violation depth: ``-min_eig`` (positive for true violations)."""
        return -self.min_eig


@dataclass(frozen=True)
class ImmittancePassivityReport:
    """Outcome of the immittance characterization.

    Attributes
    ----------
    passive:
        True when ``H + H^H`` stays positive semidefinite on the band.
    crossings:
        Zero-crossing frequencies (the immittance Omega set).
    bands:
        Violation bands (empty when passive).
    solve:
        The underlying eigensolver result.
    """

    passive: bool
    crossings: np.ndarray
    bands: Tuple[ImmittanceViolationBand, ...]
    solve: Optional[SolveResult]

    @property
    def worst_violation(self) -> float:
        """Deepest negative excursion (0.0 when passive)."""
        if not self.bands:
            return 0.0
        return max(band.severity for band in self.bands)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.passive:
            return "PASSIVE (H + H^H positive semidefinite on the band)"
        spans = ", ".join(
            f"[{b.lo:.4g}, {b.hi:.4g}] min eig {b.min_eig:.4g}" for b in self.bands
        )
        return f"NOT passive (immittance): {len(self.bands)} band(s): {spans}"


def _as_simo(model: ModelLike) -> SimoRealization:
    if isinstance(model, PoleResidueModel):
        return pole_residue_to_simo(model)
    if isinstance(model, SimoRealization):
        return model
    raise TypeError(
        f"expected PoleResidueModel or SimoRealization, got {type(model).__name__}"
    )


def _refine_trough(
    simo: SimoRealization, lo: float, hi: float, *, points: int = 33
) -> Tuple[float, float]:
    """Locate the minimum of ``eig_min(H + H^H)`` inside ``[lo, hi]``."""
    grid = np.linspace(lo, hi, max(3, points))
    values = [hermitian_min_eig(simo, w) for w in grid]
    best = int(np.argmin(values))
    a = grid[max(0, best - 1)]
    b = grid[min(len(grid) - 1, best + 1)]
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc = hermitian_min_eig(simo, c)
    fd = hermitian_min_eig(simo, d)
    for _ in range(40):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = hermitian_min_eig(simo, c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = hermitian_min_eig(simo, d)
        if b - a < 1e-12 * max(1.0, abs(b)):
            break
    w_best = c if fc < fd else d
    f_best = min(fc, fd)
    if values[best] < f_best:
        return float(grid[best]), float(values[best])
    return float(w_best), float(f_best)


def characterize_immittance_passivity(
    model: ModelLike,
    *,
    num_threads: int = 1,
    strategy: str = "auto",
    options: Optional[SolverOptions] = None,
    omega_max: Optional[float] = None,
) -> ImmittancePassivityReport:
    """Full algebraic positive-realness characterization.

    Parameters
    ----------
    model:
        Immittance macromodel; ``D + D^T`` must be positive definite (the
        asymptotic condition playing the role of eq. 4).
    num_threads, strategy, options, omega_max:
        Forwarded to the eigensolver.

    Returns
    -------
    ImmittancePassivityReport
    """
    simo = _as_simo(model)
    solve = find_imaginary_eigenvalues(
        simo,
        num_threads=num_threads,
        strategy=strategy,
        representation="immittance",
        options=options,
        omega_max=omega_max,
    )
    crossings = solve.omegas
    bands: List[ImmittanceViolationBand] = []
    if crossings.size:
        edges = ([0.0] if crossings[0] > 0.0 else []) + list(crossings)
        top = solve.band[1]
        if top > edges[-1]:
            edges.append(top)
        current_lo: Optional[float] = None
        for lo, hi in zip(edges[:-1], edges[1:]):
            if hi <= lo:
                continue
            mid = 0.5 * (lo + hi)
            if hermitian_min_eig(simo, mid) < 0.0:
                if current_lo is None:
                    current_lo = lo
            else:
                if current_lo is not None:
                    trough_w, trough_v = _refine_trough(simo, current_lo, lo)
                    bands.append(
                        ImmittanceViolationBand(current_lo, lo, trough_w, trough_v)
                    )
                    current_lo = None
        if current_lo is not None:
            trough_w, trough_v = _refine_trough(simo, current_lo, edges[-1])
            bands.append(
                ImmittanceViolationBand(current_lo, edges[-1], trough_w, trough_v)
            )
    return ImmittancePassivityReport(
        passive=len(bands) == 0,
        crossings=crossings,
        bands=tuple(bands),
        solve=solve,
    )
