"""Sampling-based passivity metrics.

These are the slow-but-simple checks the Hamiltonian method replaces:
evaluate singular values on a frequency grid and compare against the unit
threshold.  They remain useful as cross-validation in tests and as the
peak-refinement primitive inside violation bands.

All grid sweeps here are *batched*: one multi-shift ``transfer_many``
evaluation followed by one stacked ``numpy.linalg.svd`` over the
``(K, p, p)`` response array — O(K n p + K p^3) with no per-point Python
loop.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.utils.validation import ensure_sorted_frequencies

__all__ = [
    "sigma_max_many",
    "singular_values_on_grid",
    "peak_singular_value_on_grid",
    "grid_passivity_margin",
    "refine_peak",
]

ModelLike = Union[PoleResidueModel, SimoRealization]


def sigma_max_many(model: ModelLike, omegas) -> np.ndarray:
    """Largest singular value of ``H(j w)`` at each frequency (any order).

    Unlike :func:`singular_values_on_grid` the frequencies need not be
    sorted — this is the workhorse for adaptive refinement, where candidate
    points arrive in generational waves rather than as a monotone grid.
    Returns a float array matching ``omegas``'s length.
    """
    omegas = np.asarray(omegas, dtype=float).reshape(-1)
    if omegas.size == 0:
        return np.empty(0, dtype=float)
    responses = model.transfer_many(1j * omegas)
    return np.linalg.svd(responses, compute_uv=False)[:, 0]


def singular_values_on_grid(model: ModelLike, freqs_rad) -> np.ndarray:
    """Singular values of ``H(j w)`` on a grid; shape ``(K, p)`` descending."""
    freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
    responses = model.frequency_response(freqs_rad)
    return np.linalg.svd(responses, compute_uv=False)


def peak_singular_value_on_grid(model: ModelLike, freqs_rad) -> Tuple[float, float]:
    """Largest singular value over the grid and the frequency attaining it."""
    sv = singular_values_on_grid(model, freqs_rad)
    freqs_rad = np.asarray(freqs_rad, dtype=float)
    idx = int(np.argmax(sv[:, 0]))
    return float(sv[idx, 0]), float(freqs_rad[idx])


def grid_passivity_margin(model: ModelLike, freqs_rad) -> float:
    """``1 - max sigma`` over the grid; negative means sampled violation."""
    peak, _ = peak_singular_value_on_grid(model, freqs_rad)
    return 1.0 - peak


def refine_peak(
    model: ModelLike,
    lo: float,
    hi: float,
    *,
    coarse_points: int = 33,
    iterations: int = 40,
) -> Tuple[float, float]:
    """Locate the maximum of ``sigma_max(H(j w))`` inside ``[lo, hi]``.

    Batched coarse grid scan (one stacked SVD) followed by golden-section
    refinement around the best sample.  Returns ``(omega_peak, sigma_peak)``.
    """
    if hi <= lo:
        raise ValueError(f"empty interval [{lo}, {hi}]")

    def sigma_max(w: float) -> float:
        h = model.transfer(1j * w)
        return float(np.linalg.svd(h, compute_uv=False)[0])

    grid = np.linspace(lo, hi, max(3, coarse_points))
    values = sigma_max_many(model, grid)
    best = int(np.argmax(values))
    a = grid[max(0, best - 1)]
    b = grid[min(len(grid) - 1, best + 1)]
    if b <= a:
        return float(grid[best]), float(values[best])

    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = (float(v) for v in sigma_max_many(model, [c, d]))
    for _ in range(iterations):
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = sigma_max(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = sigma_max(d)
        if b - a < 1e-12 * max(1.0, abs(b)):
            break
    w_peak = c if fc > fd else d
    s_peak = max(fc, fd)
    # The coarse best may still dominate (plateaus/multiple local maxima).
    if values[best] > s_peak:
        return float(grid[best]), float(values[best])
    return float(w_peak), float(s_peak)
