"""Full algebraic passivity characterization.

Pipeline (Sec. II of the paper): run the Hamiltonian eigensolver to get
the crossing frequencies ``Omega``; the crossings partition the frequency
axis into segments on which the number of singular values above the unit
threshold is constant; sampling one interior point per segment classifies
it, yielding the violation bands.  The asymptotic segment (beyond the
largest crossing) is always passive thanks to ``sigma(D) < 1`` (eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import RunConfig, require_scattering
from repro.core.options import SolverOptions
from repro.core.results import SolveResult
from repro.core.solver import solve
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoRealization
from repro.obs.metrics import get_registry as _obs_metrics
from repro.passivity.metrics import refine_peak, sigma_max_many
from repro.utils.serialization import float_array_from_jsonable, to_jsonable

__all__ = [
    "ViolationBand",
    "PassivityReport",
    "violation_bands_from_crossings",
    "characterize_passivity",
]

ModelLike = Union[PoleResidueModel, SimoRealization]


@dataclass(frozen=True)
class ViolationBand:
    """A frequency band where at least one singular value exceeds 1.

    Attributes
    ----------
    lo, hi:
        Band edges (crossing frequencies; ``lo`` may be 0.0 when the
        violation starts at DC).
    peak_freq:
        Frequency of the largest singular value inside the band.
    peak_sigma:
        The singular-value maximum attained at ``peak_freq``.
    """

    lo: float
    hi: float
    peak_freq: float
    peak_sigma: float

    @property
    def width(self) -> float:
        """Band width in rad/s."""
        return self.hi - self.lo

    @property
    def severity(self) -> float:
        """How far the peak exceeds the threshold (``peak_sigma - 1``)."""
        return self.peak_sigma - 1.0

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of this violation band."""
        return {
            "lo": float(self.lo),
            "hi": float(self.hi),
            "peak_freq": float(self.peak_freq),
            "peak_sigma": float(self.peak_sigma),
            "width": float(self.width),
            "severity": float(self.severity),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ViolationBand":
        """Rebuild a band from a :meth:`to_dict` payload (derived fields
        like ``width``/``severity`` are recomputed, not read back)."""
        return cls(
            lo=float(payload["lo"]),
            hi=float(payload["hi"]),
            peak_freq=float(payload["peak_freq"]),
            peak_sigma=float(payload["peak_sigma"]),
        )


@dataclass(frozen=True)
class PassivityReport:
    """Outcome of the full characterization.

    Attributes
    ----------
    passive:
        True when no violation band exists *within the swept band*
        (Omega empty, or crossings of even-order touching only —
        resolved by segment sampling).  For a full-axis sweep (the
        default) this is the paper's passivity certificate; when the
        sweep was band-limited (``band_limited``), it only speaks for
        the swept interval.
    crossings:
        Sorted non-negative crossing frequencies (the set Omega).
    bands:
        The violation bands (empty when passive).
    asymptotic_margin:
        ``1 - sigma_max(D)`` — must be positive for the test to apply.
    solve:
        The underlying eigensolver result (work counters, shifts, ...),
        or None when crossings were supplied externally.
    band_limited:
        True when the characterization swept a user-restricted band
        (``omega_min > 0`` or an explicit ``omega_max``), so ``passive``
        is an in-band statement, not a whole-axis certificate.
    """

    passive: bool
    crossings: np.ndarray
    bands: Tuple[ViolationBand, ...]
    asymptotic_margin: float
    solve: Optional[SolveResult]
    band_limited: bool = False

    @property
    def worst_violation(self) -> float:
        """Largest ``sigma_max - 1`` over all bands (0.0 when passive)."""
        if not self.bands:
            return 0.0
        return max(band.severity for band in self.bands)

    def to_dict(self, *, include_solve: bool = False) -> dict:
        """JSON-serializable dictionary of the characterization outcome.

        Parameters
        ----------
        include_solve:
            Also embed the full eigensolver provenance (``solve``); the
            aggregate work counters are always present when available.
        """
        payload = {
            "passive": bool(self.passive),
            "band_limited": bool(self.band_limited),
            "crossings": to_jsonable(self.crossings),
            "bands": [band.to_dict() for band in self.bands],
            "asymptotic_margin": float(self.asymptotic_margin),
            "worst_violation": float(self.worst_violation),
        }
        if self.solve is not None:
            payload["work"] = {str(k): int(v) for k, v in self.solve.work.items()}
            if include_solve:
                payload["solve"] = self.solve.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PassivityReport":
        """Rebuild a report from a :meth:`to_dict` payload.

        Payloads written with ``include_solve=True`` rebuild the full
        eigensolver provenance; without it, ``solve`` is ``None`` (the
        same state as a report built from externally supplied crossings).
        The result store persists the ``include_solve=True`` form so a
        cache hit is indistinguishable from a fresh characterization.
        """
        solve = payload.get("solve")
        return cls(
            passive=bool(payload["passive"]),
            crossings=float_array_from_jsonable(payload["crossings"]),
            bands=tuple(
                ViolationBand.from_dict(band) for band in payload.get("bands", [])
            ),
            asymptotic_margin=float(payload["asymptotic_margin"]),
            solve=SolveResult.from_dict(solve) if solve is not None else None,
            band_limited=bool(payload.get("band_limited", False)),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        scope = ""
        if self.band_limited and self.solve is not None:
            scope = (
                f" in band [{self.solve.band[0]:.4g},"
                f" {self.solve.band[1]:.4g}] only"
            )
        elif self.band_limited:
            scope = " in the swept band only"
        if self.passive:
            return (
                f"PASSIVE{scope} (no unit-threshold crossings;"
                f" asymptotic margin {self.asymptotic_margin:.4f})"
            )
        spans = ", ".join(
            f"[{b.lo:.4g}, {b.hi:.4g}] peak {b.peak_sigma:.4f}" for b in self.bands
        )
        return f"NOT passive{scope}: {len(self.bands)} violation band(s): {spans}"


def _as_simo(model: ModelLike) -> SimoRealization:
    if isinstance(model, PoleResidueModel):
        return pole_residue_to_simo(model)
    if isinstance(model, SimoRealization):
        return model
    raise TypeError(
        f"expected PoleResidueModel or SimoRealization, got {type(model).__name__}"
    )


def violation_bands_from_crossings(
    model: ModelLike,
    crossings: Sequence[float],
    *,
    omega_min: float = 0.0,
    omega_max: Optional[float] = None,
    threshold: float = 1.0,
) -> List[ViolationBand]:
    """Classify the segments between crossings and extract violation bands.

    Parameters
    ----------
    model:
        The macromodel (used for singular-value sampling).
    crossings:
        Sorted non-negative crossing frequencies.
    omega_min:
        Lower edge of the swept band; segments below it were not swept
        and are never classified (0.0 for the standard full sweep).
    omega_max:
        Upper edge for the last finite segment; defaults to
        ``1.5 * max(crossings)`` (the asymptotic tail is passive by eq. 4
        and never classified as violating).
    threshold:
        Singular-value threshold (1.0 for scattering passivity).

    Returns
    -------
    list of ViolationBand
        Bands where the sampled midpoint exceeds the threshold, each with
        its refined interior peak.
    """
    simo = _as_simo(model)
    crossings = np.sort(np.asarray(list(crossings), dtype=float))
    if crossings.size == 0:
        return []
    omega_min = float(omega_min)
    edges = [omega_min] if crossings[0] > omega_min else []
    edges.extend(crossings.tolist())
    top = omega_max if omega_max is not None else 1.5 * float(crossings[-1])
    if top > edges[-1]:
        edges.append(top)

    bands: List[ViolationBand] = []
    # One batched sigma sweep classifies every segment midpoint at once.
    segments = [(lo, hi) for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]
    mid_sigmas = sigma_max_many(simo, [0.5 * (lo + hi) for lo, hi in segments])
    current_lo: Optional[float] = None
    for (lo, hi), sigma_mid in zip(segments, mid_sigmas):
        if sigma_mid > threshold:
            if current_lo is None:
                current_lo = lo
        else:
            if current_lo is not None:
                bands.append(_make_band(simo, current_lo, lo))
                current_lo = None
    if current_lo is not None:
        bands.append(_make_band(simo, current_lo, edges[-1]))
    return bands


def _make_band(simo: SimoRealization, lo: float, hi: float) -> ViolationBand:
    peak_freq, peak_sigma = refine_peak(simo, lo, hi)
    return ViolationBand(
        lo=float(lo), hi=float(hi), peak_freq=peak_freq, peak_sigma=peak_sigma
    )


def characterize_passivity(
    model: ModelLike,
    *,
    num_threads: int = 1,
    strategy: str = "auto",
    options: Optional[SolverOptions] = None,
    omega_max: Optional[float] = None,
    config: Optional[RunConfig] = None,
) -> PassivityReport:
    """Run the complete Hamiltonian-based passivity characterization.

    Parameters
    ----------
    model:
        Pole/residue model or structured realization (scattering
        representation).
    num_threads, strategy, options, omega_max:
        Forwarded to the eigensolver (ignored when ``config`` is given).
    config:
        A full :class:`~repro.core.config.RunConfig`; when provided it
        supersedes the individual keyword knobs.  This function is the
        scattering-domain (``sigma = 1``) test: a config requesting the
        immittance representation is rejected — use
        :func:`~repro.passivity.immittance.characterize_immittance_passivity`
        (the :class:`~repro.api.Macromodel` facade dispatches on the
        representation automatically).

    Returns
    -------
    PassivityReport

    Examples
    --------
    >>> from repro.synth import random_macromodel
    >>> model = random_macromodel(8, 2, seed=3, sigma_target=0.9)
    >>> characterize_passivity(model).passive
    True
    """
    if config is None:
        config = RunConfig.from_legacy(
            num_threads=num_threads,
            strategy=strategy,
            omega_max=omega_max,
            options=options,
        )
    else:
        require_scattering(
            config,
            "characterize_passivity",
            hint="use characterize_immittance_passivity for immittance models",
        )
    simo = _as_simo(model)
    _obs_metrics().count("eigensweep.runs")
    with _obs_metrics().timer("eigensweep.solve"):
        result = solve(simo, config)
    margin = 1.0 - float(np.linalg.norm(simo.d, 2)) if simo.d.size else 1.0
    bands = violation_bands_from_crossings(
        simo,
        result.omegas,
        omega_min=result.band[0],
        omega_max=result.band[1],
    )
    return PassivityReport(
        passive=len(bands) == 0,
        crossings=result.omegas,
        bands=tuple(bands),
        asymptotic_margin=margin,
        solve=result,
        band_limited=config.is_band_limited,
    )
