"""H-infinity norm computation via Hamiltonian bisection (ref. [7]).

The paper's passivity test descends from Boyd, Balakrishnan & Kabamba's
bisection method for the H-infinity norm: ``||H||_inf < gamma`` holds iff
the Hamiltonian matrix built from the model scaled by ``1/gamma`` has no
purely imaginary eigenvalues.  With the fast multi-shift eigensolver as
the oracle, the bisection needs only a handful of sweeps.

Scaling trick: dividing all residues and the direct term by ``gamma``
turns the "sigma crosses gamma" test into the library's native
"sigma crosses 1" test, so no new Hamiltonian variant is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.config import RunConfig, require_full_axis, require_scattering
from repro.core.options import SolverOptions
from repro.core.solver import solve
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoColumn, SimoRealization
from repro.utils.validation import ensure_positive_float

__all__ = ["HinfResult", "hinf_norm"]


@dataclass(frozen=True)
class HinfResult:
    """Outcome of the H-infinity bisection.

    Attributes
    ----------
    norm:
        The computed norm estimate (midpoint of the final bracket).
    lower, upper:
        Final certified bracket: ``||H||_inf`` lies in ``[lower, upper]``.
    peak_freq:
        A frequency attaining (approximately) the norm, from the last
        failing gamma's crossing information; NaN when the norm is
        attained only at DC/infinity.
    bisections:
        Number of Hamiltonian sweeps performed.
    """

    norm: float
    lower: float
    upper: float
    peak_freq: float
    bisections: int

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of the bisection outcome."""
        peak = float(self.peak_freq)
        return {
            "norm": float(self.norm),
            "lower": float(self.lower),
            "upper": float(self.upper),
            "peak_freq": peak if np.isfinite(peak) else None,
            "bisections": int(self.bisections),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HinfResult":
        """Rebuild a bisection outcome from a :meth:`to_dict` payload
        (``peak_freq: null`` restores the NaN sentinel)."""
        peak = payload.get("peak_freq")
        return cls(
            norm=float(payload["norm"]),
            lower=float(payload["lower"]),
            upper=float(payload["upper"]),
            peak_freq=float("nan") if peak is None else float(peak),
            bisections=int(payload["bisections"]),
        )


def _scaled_simo(
    model: Union[PoleResidueModel, SimoRealization], gamma: float
) -> SimoRealization:
    """Return the realization of ``H / gamma``."""
    if isinstance(model, PoleResidueModel):
        scaled = PoleResidueModel(
            model.poles.copy(), model.residues / gamma, model.d / gamma
        )
        return pole_residue_to_simo(scaled)
    if isinstance(model, SimoRealization):
        columns = [
            SimoColumn(
                col.real_poles,
                col.real_residues / gamma,
                col.pair_poles,
                col.pair_residues / gamma,
            )
            for col in model.columns
        ]
        return SimoRealization(columns, model.d / gamma)
    raise TypeError(
        f"expected PoleResidueModel or SimoRealization, got {type(model).__name__}"
    )


def hinf_norm(
    model: Union[PoleResidueModel, SimoRealization],
    *,
    rtol: float = 1e-6,
    num_threads: int = 1,
    options: Optional[SolverOptions] = None,
    max_bisections: int = 60,
    grid_points: int = 128,
    config: Optional[RunConfig] = None,
) -> HinfResult:
    """Compute ``||H||_inf`` by gamma-bisection with the Hamiltonian oracle.

    Parameters
    ----------
    model:
        Strictly stable macromodel.
    rtol:
        Relative width of the final bracket.
    num_threads:
        Threads for each embedded eigensolver sweep.
    options:
        Eigensolver options.
    max_bisections:
        Safety cap on oracle calls.
    grid_points:
        Size of the coarse grid used for the initial lower bound.
    config:
        A full :class:`~repro.core.config.RunConfig` for the embedded
        sweeps; supersedes ``num_threads`` / ``options``.  The
        ``strategy`` is honored (``"auto"`` resolves per thread count as
        usual); explicit ``omega_min`` / ``omega_max`` are rejected —
        the norm is a supremum over the whole axis.

    Returns
    -------
    HinfResult

    Notes
    -----
    The lower bound starts from a coarse grid peak (a valid lower bound:
    the norm is a supremum).  The upper bound starts from the grid peak
    inflated stepwise until the oracle certifies no crossings.  Each
    bisection step sharpens the bracket by the classical dichotomy:
    crossings exist at level ``gamma`` iff ``||H||_inf > gamma``.
    """
    ensure_positive_float(rtol, "rtol")
    if config is None:
        config = RunConfig.from_legacy(num_threads=num_threads, options=options)
    else:
        require_scattering(config, "the H-infinity norm")
        require_full_axis(config, "the H-infinity norm (a supremum)")
    simo = model if isinstance(model, SimoRealization) else pole_residue_to_simo(model)
    if not simo.is_stable():
        raise ValueError("H-infinity norm via Hamiltonian test requires a stable model")

    # Coarse grid lower bound (always valid) including resonance points.
    resonant = simo.poles()
    resonant = resonant[resonant.imag > 0]
    top = max(simo.spectral_radius_bound(), 1e-6)
    grid = np.unique(
        np.concatenate(
            [np.linspace(0.0, 1.3 * top, grid_points), resonant.imag]
        )
    )
    sigmas = np.linalg.svd(simo.frequency_response(grid), compute_uv=False)[:, 0]
    lower = float(sigmas.max())
    d_norm = float(np.linalg.norm(simo.d, 2)) if simo.d.size else 0.0
    lower = max(lower, d_norm, 1e-300)
    peak_freq = float(grid[int(np.argmax(sigmas))])

    def has_crossings(gamma: float):
        scaled = _scaled_simo(simo, gamma)
        result = solve(scaled, config)
        return result.num_crossings > 0, result

    bisections = 0
    # Establish an upper bound: inflate until the oracle certifies.
    upper = lower * 1.05 + 1e-12
    while bisections < max_bisections:
        bisections += 1
        crossing, _ = has_crossings(upper)
        if not crossing:
            break
        lower = upper
        upper *= 2.0
    else:
        raise RuntimeError("could not establish an H-infinity upper bound")

    # Bisection proper.
    while upper - lower > rtol * upper and bisections < max_bisections:
        bisections += 1
        gamma = float(np.sqrt(lower * upper))
        crossing, result = has_crossings(gamma)
        if crossing:
            lower = gamma
            if result.omegas.size:
                peak_freq = float(result.omegas[int(result.omegas.size // 2)])
        else:
            upper = gamma

    return HinfResult(
        norm=0.5 * (lower + upper),
        lower=float(lower),
        upper=float(upper),
        peak_freq=peak_freq,
        bisections=bisections,
    )
