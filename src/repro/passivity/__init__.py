"""Passivity characterization and enforcement.

Characterization (Sec. II of the paper): the purely imaginary eigenvalues
of the Hamiltonian matrix mark the frequencies where singular values of
the scattering matrix cross the unit threshold; the bands between
consecutive crossings where ``sigma_max > 1`` are the passivity
violations.

Enforcement: the standard iterative residue-perturbation scheme referenced
by the paper ([8], [17]): locate each violation band's singular-value
peak, build first-order sensitivities of the peak with respect to the
model residues, and apply the minimum-norm perturbation that pushes all
peaks back under the threshold; repeat until the Hamiltonian test reports
no crossings.
"""

from repro.passivity.characterization import (
    PassivityReport,
    ViolationBand,
    characterize_passivity,
    violation_bands_from_crossings,
)
from repro.passivity.enforcement import (
    EnforcementResult,
    clip_direct_term,
    enforce_passivity,
)
from repro.passivity.hinf import HinfResult, hinf_norm
from repro.passivity.metrics import (
    grid_passivity_margin,
    peak_singular_value_on_grid,
    singular_values_on_grid,
)
from repro.passivity.sampling import SamplingReport, sampled_violations

__all__ = [
    "PassivityReport",
    "ViolationBand",
    "characterize_passivity",
    "violation_bands_from_crossings",
    "EnforcementResult",
    "clip_direct_term",
    "enforce_passivity",
    "singular_values_on_grid",
    "peak_singular_value_on_grid",
    "grid_passivity_margin",
    "HinfResult",
    "hinf_norm",
    "SamplingReport",
    "sampled_violations",
]
