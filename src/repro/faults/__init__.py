"""Deterministic, seeded fault injection for the durable service stack.

The framework has three pieces:

* :mod:`repro.faults.registry` — the named injection points threaded
  through store I/O, queue DB operations, worker execution, and HTTP
  request handling, each declaring the fault kinds it supports;
* :mod:`repro.faults.plan` — :class:`FaultPlan`, parsed from the
  ``REPRO_FAULTS`` environment variable
  (``store.write:io_error@0.05;queue.claim:busy@0.1``), with malformed
  values raising :class:`~repro.core.config.ConfigError`;
* :mod:`repro.faults.injector` — the :func:`inject` hook the call
  sites invoke, free when no plan is active.

``repro faults list`` enumerates the registry; the chaos suite under
``tests/integration/test_chaos.py`` proves the hardening by running a
fleet with faults at every point.  See "Failure modes and recovery" in
``docs/quickstart.md``.
"""

from repro.faults.injector import (
    activate,
    active_plan,
    counters,
    deactivate,
    init_from_env,
    inject,
)
from repro.faults.plan import DEFAULT_HANG_SECONDS, FaultPlan, FaultSpec
from repro.faults.registry import FAULT_KINDS, INJECTION_POINTS, InjectionPoint

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "FaultPlan",
    "FaultSpec",
    "InjectionPoint",
    "activate",
    "active_plan",
    "counters",
    "deactivate",
    "init_from_env",
    "inject",
]
