"""Fault plans: what to inject, where, and how often.

A plan is parsed from the ``REPRO_FAULTS`` environment variable (or
built programmatically) and holds one :class:`FaultSpec` per injection
point.  The grammar is a semicolon-joined list of clauses::

    REPRO_FAULTS="store.write:io_error@0.05;queue.claim:busy@0.1"

Each clause is ``<point>:<kind>@<probability>``: the *point* must be a
registered injection point (:data:`~repro.faults.registry.INJECTION_POINTS`),
the *kind* one the point supports, and the *probability* a float in
``[0, 1]``.  Anything malformed raises
:class:`~repro.core.config.ConfigError` naming the offending clause —
a fault plan with a typo must fail loudly at startup, never silently
inject nothing.

Plans are **deterministic**: each point draws from its own RNG stream
seeded by ``(plan seed, point name)``, so the same plan, seed, and
per-point call sequence reproduces the same fault pattern
(``REPRO_FAULTS_SEED`` sets the seed; default 0).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import ConfigError
from repro.faults.registry import FAULT_KINDS, INJECTION_POINTS

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "FaultPlan",
    "FaultSpec",
]

#: How long an injected ``hang`` stalls the call site.  Long enough to
#: shuffle interleavings and trip aggressive timeouts in tests, short
#: enough that chaos suites stay fast.
DEFAULT_HANG_SECONDS = 0.05


@dataclass(frozen=True)
class FaultSpec:
    """One clause of a plan: inject ``kind`` at ``point`` with ``probability``."""

    point: str
    kind: str
    probability: float

    def __str__(self) -> str:
        return f"{self.point}:{self.kind}@{self.probability:g}"


@dataclass(frozen=True)
class FaultPlan:
    """A validated set of fault specs plus the determinism seed."""

    specs: Tuple[FaultSpec, ...]
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    by_point: Dict[str, FaultSpec] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "by_point", {spec.point: spec for spec in self.specs}
        )

    @classmethod
    def parse(
        cls,
        text: str,
        *,
        seed: int = 0,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
    ) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar; raises :class:`ConfigError`."""
        specs = []
        seen = set()
        for raw_clause in str(text).split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            specs.append(_parse_clause(clause))
            if specs[-1].point in seen:
                raise ConfigError(
                    f"invalid REPRO_FAULTS clause {clause!r}: injection"
                    f" point {specs[-1].point!r} appears more than once"
                )
            seen.add(specs[-1].point)
        if not specs:
            raise ConfigError(
                "REPRO_FAULTS is set but contains no fault clauses"
                " (expected '<point>:<kind>@<probability>[;...]')"
            )
        return cls(specs=tuple(specs), seed=int(seed), hang_seconds=hang_seconds)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """Build the plan ``REPRO_FAULTS`` describes (``None`` if unset).

        ``REPRO_FAULTS_SEED`` (default 0) seeds the per-point RNG
        streams.  Raises :class:`ConfigError` on malformed values.
        """
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_FAULTS", "").strip()
        if not raw:
            return None
        raw_seed = env.get("REPRO_FAULTS_SEED", "").strip()
        seed = 0
        if raw_seed:
            try:
                seed = int(raw_seed)
            except ValueError as exc:
                raise ConfigError(
                    f"invalid REPRO_FAULTS_SEED={raw_seed!r}: {exc}"
                ) from exc
        return cls.parse(raw, seed=seed)

    def describe(self) -> str:
        """The canonical one-line spelling of this plan."""
        return ";".join(str(spec) for spec in self.specs)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "faults": [
                {
                    "point": spec.point,
                    "kind": spec.kind,
                    "probability": spec.probability,
                }
                for spec in self.specs
            ],
        }


def _parse_clause(clause: str) -> FaultSpec:
    head, sep, raw_prob = clause.partition("@")
    if not sep:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: expected"
            " '<point>:<kind>@<probability>'"
        )
    point, sep, kind = head.partition(":")
    point, kind = point.strip(), kind.strip()
    if not sep or not point or not kind:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: expected"
            " '<point>:<kind>@<probability>'"
        )
    registered = INJECTION_POINTS.get(point)
    if registered is None:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: unknown injection"
            f" point {point!r}; registered points:"
            f" {', '.join(INJECTION_POINTS)}"
        )
    if kind not in FAULT_KINDS:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: unknown fault kind"
            f" {kind!r}; valid kinds: {', '.join(FAULT_KINDS)}"
        )
    if kind not in registered.kinds:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: point {point!r}"
            f" does not support kind {kind!r} (supported:"
            f" {', '.join(registered.kinds)})"
        )
    try:
        probability = float(raw_prob.strip())
    except ValueError as exc:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: probability"
            f" {raw_prob.strip()!r} is not a number"
        ) from exc
    if not 0.0 <= probability <= 1.0:
        raise ConfigError(
            f"invalid REPRO_FAULTS clause {clause!r}: probability"
            f" {probability:g} must be in [0, 1]"
        )
    return FaultSpec(point=point, kind=kind, probability=probability)
