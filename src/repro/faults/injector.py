"""The injection hook: :func:`inject`, and the process-wide active plan.

Call sites are instrumented with one line::

    from repro.faults import inject
    ...
    fault = inject("store.write")   # None, or a data-fault kind

When no plan is active the call is two global reads and a comparison —
effectively free, so the hooks stay in production code permanently.

When a plan is active, each call rolls the point's seeded RNG against
the configured probability.  *Raise* kinds are expressed here —
``io_error`` raises :class:`OSError`, ``busy`` raises
:class:`sqlite3.OperationalError` (message containing ``locked`` so the
retry predicates treat it exactly like a real busy), ``error`` raises
:class:`RuntimeError`, and ``hang`` stalls the call — while the *data*
kinds ``corrupt`` / ``truncate`` are returned for the call site to
apply to its own payload.

Activation is lazy and environment-driven: the first :func:`inject`
(or any :func:`init_from_env`, which the store/queue/service
constructors call at startup so malformed plans fail *there*) parses
``REPRO_FAULTS``.  Subprocess workers therefore inherit the plan with
no extra plumbing.  Tests drive plans directly with
:func:`activate` / :func:`deactivate`.
"""

from __future__ import annotations

import os
import random
import sqlite3
import threading
import time
from typing import Dict, Optional

from repro.faults.plan import FaultPlan

__all__ = [
    "activate",
    "active_plan",
    "counters",
    "deactivate",
    "init_from_env",
    "inject",
]

_LOCK = threading.Lock()
_UNSEEN = object()  # init_from_env has never run in this process

_ACTIVE: Optional["_Injector"] = None
_ENV_SEEN = _UNSEEN  # the REPRO_FAULTS value the current state reflects


class _Injector:
    """Runtime state of one active plan: per-point RNG streams + counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        # One independent, deterministically seeded stream per point:
        # string seeds hash stably (SHA-512 under the hood), so the
        # same (seed, point, call sequence) reproduces the same faults.
        self._rng: Dict[str, random.Random] = {
            spec.point: random.Random(f"{plan.seed}:{spec.point}")
            for spec in plan.specs
        }
        self.fired: Dict[str, int] = {spec.point: 0 for spec in plan.specs}
        self.checked: Dict[str, int] = {spec.point: 0 for spec in plan.specs}

    def fire(self, point: str) -> Optional[str]:
        spec = self.plan.by_point.get(point)
        if spec is None:
            return None
        with self._lock:
            self.checked[point] += 1
            hit = (
                spec.probability > 0.0
                and self._rng[point].random() < spec.probability
            )
            if hit:
                self.fired[point] += 1
        if not hit:
            return None
        # Chaos-suite jobs carry their injected faults on the trace:
        # annotate the innermost open span (no-op outside any trace)
        # before a raise-kind unwinds the stack.
        from repro.obs.trace import record_fault

        record_fault(point, spec.kind)
        if spec.kind == "io_error":
            raise OSError(f"injected io_error at {point}")
        if spec.kind == "busy":
            raise sqlite3.OperationalError(
                f"database is locked (injected busy at {point})"
            )
        if spec.kind == "error":
            raise RuntimeError(f"injected error at {point}")
        if spec.kind == "hang":
            time.sleep(self.plan.hang_seconds)
            return None
        return spec.kind  # corrupt / truncate: the call site applies it


def inject(point: str) -> Optional[str]:
    """Roll the dice at one injection point.

    Returns ``None`` (no fault, or a raise/stall kind already
    expressed), or a data-fault kind (``"corrupt"`` / ``"truncate"``)
    for the call site to apply.  Zero work when no plan is active.
    """
    active = _ACTIVE
    if active is None:
        if _ENV_SEEN is not _UNSEEN:
            return None
        active = init_from_env()
        if active is None:
            return None
    return active.fire(point)


def init_from_env() -> Optional["_Injector"]:
    """Sync the active plan with ``REPRO_FAULTS`` (idempotent, cheap).

    Re-parses only when the environment value changed since the last
    call.  Raises :class:`~repro.core.config.ConfigError` on malformed
    values — infrastructure constructors call this at startup precisely
    so a typo'd plan fails the boot, not silently injects nothing.
    """
    global _ACTIVE, _ENV_SEEN
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    with _LOCK:
        if raw == _ENV_SEEN:
            return _ACTIVE
        plan = FaultPlan.from_env()  # may raise ConfigError
        _ACTIVE = _Injector(plan) if plan is not None else None
        _ENV_SEEN = raw
        return _ACTIVE


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` directly (tests; overrides the environment)."""
    global _ACTIVE, _ENV_SEEN
    with _LOCK:
        _ACTIVE = _Injector(plan)
        # Pin the env snapshot so a later init_from_env() with an
        # unchanged environment does not clobber the explicit plan.
        _ENV_SEEN = os.environ.get("REPRO_FAULTS", "").strip()


def deactivate() -> None:
    """Remove any active plan (explicit or environment-derived)."""
    global _ACTIVE, _ENV_SEEN
    with _LOCK:
        _ACTIVE = None
        _ENV_SEEN = os.environ.get("REPRO_FAULTS", "").strip()


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, if any."""
    active = _ACTIVE
    return active.plan if active is not None else None


def counters() -> Dict[str, dict]:
    """Per-point ``{checked, fired}`` counts of the active plan."""
    active = _ACTIVE
    if active is None:
        return {}
    with active._lock:
        return {
            point: {
                "checked": active.checked[point],
                "fired": active.fired[point],
            }
            for point in active.checked
        }
