"""The registry of named fault-injection points.

Every place the codebase calls :func:`repro.faults.inject` is declared
here, with the fault kinds that call site knows how to express.  The
registry is the single source of truth consumed by

* :meth:`repro.faults.FaultPlan.parse` — a plan naming an unregistered
  point (or an unsupported kind for a point) is a configuration error;
* ``repro faults list`` — the CLI enumeration that keeps the docs
  honest;
* the chaos suite — which asserts it exercises *every* registered
  point, so a new injection point cannot ship untested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["FAULT_KINDS", "INJECTION_POINTS", "InjectionPoint"]

#: Every fault kind a plan may request.  ``io_error``, ``busy``,
#: ``error``, and ``hang`` are *raise/stall* kinds handled inside
#: :func:`repro.faults.inject`; ``corrupt`` and ``truncate`` are *data*
#: kinds returned to the call site, which applies them to its payload.
FAULT_KINDS = ("io_error", "busy", "error", "hang", "corrupt", "truncate")


@dataclass(frozen=True)
class InjectionPoint:
    """One named place faults can be injected."""

    name: str
    description: str
    kinds: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "kinds": list(self.kinds),
        }


def _point(name: str, description: str, *kinds: str) -> InjectionPoint:
    unknown = [kind for kind in kinds if kind not in FAULT_KINDS]
    if unknown:
        raise AssertionError(f"unknown fault kind(s) in registry: {unknown}")
    return InjectionPoint(name=name, description=description, kinds=kinds)


#: name -> :class:`InjectionPoint`, in documentation order.
INJECTION_POINTS: Dict[str, InjectionPoint] = {
    point.name: point
    for point in (
        _point(
            "store.write",
            "result-store put(): the atomic write of one entry"
            " (io_error simulates disk failure; truncate a partial"
            " write surviving on disk)",
            "io_error",
            "error",
            "hang",
            "truncate",
        ),
        _point(
            "store.read",
            "result-store get(): reading one entry back"
            " (io_error a transient read failure; corrupt bit-rot of"
            " the bytes read)",
            "io_error",
            "error",
            "hang",
            "corrupt",
        ),
        _point(
            "queue.enqueue",
            "queue INSERT of a submitted job (busy simulates a"
            " SQLITE_BUSY writer collision)",
            "busy",
            "error",
            "hang",
        ),
        _point(
            "queue.claim",
            "the atomic claim flipping queued -> running",
            "busy",
            "error",
            "hang",
        ),
        _point(
            "queue.ack",
            "the ownership-guarded terminal-state ack",
            "busy",
            "error",
            "hang",
        ),
        _point(
            "queue.heartbeat",
            "a worker's lease-extension heartbeat",
            "busy",
            "error",
            "hang",
        ),
        _point(
            "worker.run",
            "job execution inside a queue worker (hang simulates a"
            " stalled computation)",
            "error",
            "hang",
        ),
        _point(
            "http.request",
            "HTTP request handling in the service front-end (error"
            " surfaces as a retriable 503)",
            "error",
            "hang",
        ),
    )
}
