"""Macromodel analysis utilities.

Post-identification diagnostics used throughout macromodeling flows:
DC gain, resonance inventory (pole frequencies and quality factors),
modal dominance (how much each pole contributes to the response), and
dominance-based order reduction.  These support the examples and give the
enforcement/fitting layers quantitative accuracy measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.macromodel.poles import partition_poles
from repro.macromodel.rational import PoleResidueModel
from repro.utils.validation import ensure_positive_int

__all__ = [
    "ResonanceInfo",
    "dc_gain",
    "resonances",
    "modal_dominance",
    "reduce_by_dominance",
    "response_error",
]


@dataclass(frozen=True)
class ResonanceInfo:
    """One resonant pole pair of a macromodel.

    Attributes
    ----------
    frequency:
        Resonant frequency ``w0 = |Im(p)|`` (rad/s).
    damping:
        Damping ``|Re(p)|``.
    q_factor:
        Quality factor ``w0 / (2 |Re p|)`` — high Q means a sharp peak.
    dominance:
        Modal dominance ``||R|| / |Re(p)|`` (peak response contribution).
    """

    frequency: float
    damping: float
    q_factor: float
    dominance: float


def dc_gain(model: PoleResidueModel) -> np.ndarray:
    """The DC transfer matrix ``H(0) = D - sum R_m / p_m`` (real)."""
    h0 = model.transfer(0.0)
    return np.real_if_close(h0, tol=1e6).real


def resonances(model: PoleResidueModel) -> List[ResonanceInfo]:
    """Inventory of the model's resonant pole pairs, sorted by frequency."""
    _, pair_poles = partition_poles(model.poles)
    infos: List[ResonanceInfo] = []
    dominance = modal_dominance(model)
    # Map each upper pole to its dominance entry.
    for q in pair_poles:
        idx = int(np.argmin(np.abs(model.poles - q)))
        w0 = abs(q.imag)
        damping = abs(q.real)
        infos.append(
            ResonanceInfo(
                frequency=w0,
                damping=damping,
                q_factor=w0 / (2.0 * damping) if damping > 0 else np.inf,
                dominance=float(dominance[idx]),
            )
        )
    infos.sort(key=lambda info: info.frequency)
    return infos


def modal_dominance(model: PoleResidueModel) -> np.ndarray:
    """Per-pole dominance measure ``||R_m||_F / |Re(p_m)|``.

    The peak magnitude contribution of the partial fraction
    ``R_m / (s - p_m)`` on the imaginary axis is ``||R_m|| / |Re p_m|``
    (attained near ``w = Im p_m``), making this the standard ranking for
    dominance-based truncation.
    """
    norms = np.linalg.norm(model.residues.reshape(model.num_poles, -1), axis=1)
    damping = np.maximum(np.abs(model.poles.real), 1e-300)
    return norms / damping


def reduce_by_dominance(
    model: PoleResidueModel, keep: int
) -> Tuple[PoleResidueModel, float]:
    """Truncate the model to its ``keep`` most dominant poles.

    Conjugate pairs are kept or dropped together (a pair counts as two
    poles toward the budget; the budget is rounded up when a pair
    straddles it).

    Parameters
    ----------
    model:
        The model to reduce.
    keep:
        Number of poles to retain (1 <= keep <= num_poles).

    Returns
    -------
    (reduced, discarded_dominance):
        The reduced model and the total dominance of the dropped poles
        (an error indicator: small values mean safe truncation).
    """
    keep = ensure_positive_int(keep, "keep")
    if keep >= model.num_poles:
        return model, 0.0
    dominance = modal_dominance(model)

    # Group poles into units: singles (real) and pairs (conjugates).
    used = np.zeros(model.num_poles, dtype=bool)
    units: List[Tuple[float, List[int]]] = []
    for i, pole in enumerate(model.poles):
        if used[i]:
            continue
        used[i] = True
        if abs(pole.imag) <= 1e-12 * max(1.0, abs(pole)):
            units.append((float(dominance[i]), [i]))
            continue
        dist = np.where(used, np.inf, np.abs(model.poles - np.conj(pole)))
        j = int(np.argmin(dist))
        used[j] = True
        units.append((float(dominance[i] + dominance[j]), [i, j]))

    units.sort(key=lambda u: -u[0])
    kept_indices: List[int] = []
    for dom, indices in units:
        if len(kept_indices) >= keep:
            break
        kept_indices.extend(indices)
    kept_indices.sort()
    dropped = [i for i in range(model.num_poles) if i not in set(kept_indices)]
    discarded = float(dominance[dropped].sum()) if dropped else 0.0

    reduced = PoleResidueModel(
        model.poles[kept_indices],
        model.residues[kept_indices],
        model.d.copy(),
    )
    return reduced, discarded


def response_error(
    model_a: PoleResidueModel, model_b: PoleResidueModel, freqs_rad
) -> float:
    """Relative RMS difference of two models over a frequency grid."""
    ha = model_a.frequency_response(freqs_rad)
    hb = model_b.frequency_response(freqs_rad)
    denom = np.linalg.norm(ha)
    if denom == 0.0:
        return float(np.linalg.norm(hb))
    return float(np.linalg.norm(ha - hb) / denom)
