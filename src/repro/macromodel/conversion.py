"""Conversion of generic state-space models to pole/residue form.

The eigensolver's fast kernels need the structured SIMO realization, which
is natural when models come from rational fitting.  Models arriving as
arbitrary dense ``{A, B, C, D}`` matrices (e.g. from other tools) are
handled here: a modal decomposition of ``A`` turns the model into
pole/residue form, ``H(s) = D + sum_m (C v_m)(w_m^H B) / (s - lam_m)``,
which then feeds :func:`repro.macromodel.realization.pole_residue_to_simo`.
"""

from __future__ import annotations

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.macromodel.statespace import StateSpace

__all__ = ["statespace_to_pole_residue", "statespace_to_simo"]


def statespace_to_pole_residue(
    ss: StateSpace, *, symmetrize_tol: float = 1e-8
) -> PoleResidueModel:
    """Modal decomposition of a dense state-space model.

    Parameters
    ----------
    ss:
        The dense realization.  ``A`` must be diagonalizable with simple
        enough eigenvalue structure for a modal decomposition (repeated
        defective eigenvalues are rejected via a conditioning check).
    symmetrize_tol:
        Relative tolerance used when pairing complex-conjugate modes and
        enforcing exact conjugate symmetry on the residues.

    Returns
    -------
    PoleResidueModel
        Model with ``H(s)`` identical to the input's transfer matrix (up
        to round-off).

    Raises
    ------
    ValueError
        If ``A`` is numerically defective (the eigenvector matrix is too
        ill-conditioned for a trustworthy modal form).
    """
    if not isinstance(ss, StateSpace):
        raise TypeError(f"expected StateSpace, got {type(ss).__name__}")
    n = ss.order
    if n == 0:
        raise ValueError("cannot convert a zero-order model")
    lam, v = np.linalg.eig(ss.a)
    cond = np.linalg.cond(v)
    if not np.isfinite(cond) or cond > 1e12:
        raise ValueError(
            f"state matrix is numerically defective (eigenvector condition"
            f" {cond:.2e}); modal conversion is unreliable"
        )
    w = np.linalg.inv(v)  # rows are the left modal directions
    cv = ss.c @ v  # (p, n)
    wb = w @ ss.b  # (n, p)
    residues = np.einsum("im,mj->mij", cv, wb)  # (n, p, p)

    # Enforce exact realness: pair conjugate modes and average.
    poles = lam.copy()
    scale = np.maximum(np.abs(poles), 1.0)
    is_real = np.abs(poles.imag) <= symmetrize_tol * scale
    poles[is_real] = poles[is_real].real
    residues[is_real] = residues[is_real].real + 0.0j

    used = np.zeros(n, dtype=bool)
    for i in range(n):
        if used[i] or is_real[i]:
            used[i] = True
            continue
        target = np.conj(poles[i])
        dist = np.where(used | is_real, np.inf, np.abs(poles - target))
        dist[i] = np.inf
        j = int(np.argmin(dist))
        if not np.isfinite(dist[j]) or dist[j] > 1e-6 * max(1.0, abs(poles[i])):
            raise ValueError(
                f"complex mode {poles[i]} lacks a conjugate partner;"
                " the input realization is not real"
            )
        mean_pole = 0.5 * (poles[i] + np.conj(poles[j]))
        mean_res = 0.5 * (residues[i] + np.conj(residues[j]))
        poles[i], poles[j] = mean_pole, np.conj(mean_pole)
        residues[i], residues[j] = mean_res, np.conj(mean_res)
        used[i] = used[j] = True

    return PoleResidueModel(poles, residues, ss.d)


def statespace_to_simo(ss: StateSpace) -> SimoRealization:
    """Convenience: dense state space -> structured SIMO realization.

    Note the resulting order is ``p * n`` (every column carries the full
    modal pole set); for the eigensolver this is still fast because all
    kernels are O(order).
    """
    from repro.macromodel.realization import pole_residue_to_simo

    return pole_residue_to_simo(statespace_to_pole_residue(ss))
