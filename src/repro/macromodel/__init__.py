"""Macromodel representations.

Three equivalent views of a linear interconnect macromodel are provided:

* :class:`repro.macromodel.rational.PoleResidueModel` -- the pole/residue
  form produced by rational fitting (Vector Fitting, ref. [1] of the paper);
* :class:`repro.macromodel.statespace.StateSpace` -- a generic dense
  state-space realization ``{A, B, C, D}``;
* :class:`repro.macromodel.simo.SimoRealization` -- the structured
  block-diagonal multi-SIMO realization of eq. (2) in the paper, with O(n)
  shifted-resolvent kernels that power the fast Hamiltonian eigensolver.
"""

from repro.macromodel.poles import (
    is_stable,
    make_stable,
    partition_poles,
    reconstruct_poles,
)
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import (
    pole_residue_to_simo,
    realize_column,
    simo_from_columns,
)
from repro.macromodel.simo import SimoColumn, SimoRealization
from repro.macromodel.statespace import StateSpace

__all__ = [
    "PoleResidueModel",
    "StateSpace",
    "SimoColumn",
    "SimoRealization",
    "partition_poles",
    "reconstruct_poles",
    "is_stable",
    "make_stable",
    "realize_column",
    "simo_from_columns",
    "pole_residue_to_simo",
]
