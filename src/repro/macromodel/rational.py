"""Pole/residue (partial-fraction) macromodel representation.

A rational macromodel in pole-residue form is

.. math::

    H(s) = D + \\sum_{m=1}^{M} \\frac{R_m}{s - p_m}

with ``p x p`` residue matrices :math:`R_m`.  This is the natural output of
Vector Fitting and the natural input of the realization builders that
produce the structured SIMO state space of the paper's eq. (2).

Complex poles must appear in conjugate pairs with conjugate residues so that
:math:`H(s)` is real for real :math:`s` (a *real* rational model).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.macromodel.poles import is_stable, partition_poles
from repro.utils.serialization import (
    complex_array_from_jsonable,
    float_array_from_jsonable,
    to_jsonable,
)
from repro.utils.validation import (
    ensure_matrix,
    ensure_sorted_frequencies,
    ensure_vector,
)

__all__ = ["PoleResidueModel"]


@dataclass(frozen=True)
class PoleResidueModel:
    """Immutable pole/residue rational model.

    Parameters
    ----------
    poles:
        1-D complex array of poles ``p_m`` (conjugate-complete).
    residues:
        Array of shape ``(M, p, p)``; ``residues[m]`` is the residue matrix
        of pole ``poles[m]``.  Residues of conjugate pole pairs must be
        conjugates of each other.
    d:
        Constant (direct coupling) term, shape ``(p, p)`` real.

    Notes
    -----
    The model is strictly proper apart from ``d`` — no ``s*E`` term, matching
    the paper's scattering setting where :math:`H(\\infty) = D` with
    :math:`\\sigma(D) < 1` (eq. 4).
    """

    poles: np.ndarray
    residues: np.ndarray
    d: np.ndarray

    def __post_init__(self):
        poles = ensure_vector(self.poles, "poles", dtype=complex)
        residues = np.asarray(self.residues, dtype=complex)
        d = ensure_matrix(self.d, "d", dtype=float)
        if residues.ndim != 3:
            raise ValueError(
                f"residues must have shape (M, p, p), got {residues.shape}"
            )
        if residues.shape[0] != poles.size:
            raise ValueError(
                f"number of residues ({residues.shape[0]}) must match number of"
                f" poles ({poles.size})"
            )
        if residues.shape[1] != residues.shape[2]:
            raise ValueError(
                f"residue matrices must be square, got {residues.shape[1:]}"
            )
        if d.shape != residues.shape[1:]:
            raise ValueError(
                f"d has shape {d.shape}, expected {residues.shape[1:]} to match"
                " residues"
            )
        # Bypass frozen-ness to store normalized arrays.
        object.__setattr__(self, "poles", poles)
        object.__setattr__(self, "residues", residues)
        object.__setattr__(self, "d", d)
        # Complex-cast direct term, computed once for the evaluation hot path.
        object.__setattr__(self, "_d_complex", d.astype(complex))
        # Validate conjugate completeness early (raises ValueError if broken).
        partition_poles(poles)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_poles(self) -> int:
        """Number of poles M (counting each conjugate partner separately)."""
        return int(self.poles.size)

    @property
    def num_ports(self) -> int:
        """Number of electrical ports p."""
        return int(self.d.shape[0])

    @property
    def order(self) -> int:
        """Dynamic order of the SIMO realization this model produces.

        Every column uses the full pole set, so the realization order is
        ``p * M`` (eq. 2 of the paper with ``m_k = M`` for all k).
        """
        return self.num_ports * self.num_poles

    def is_stable(self, *, margin: float = 0.0) -> bool:
        """True when all poles are strictly inside the left half plane."""
        return is_stable(self.poles, strict=True, margin=margin)

    def is_real_model(self, tol: float = 1e-9) -> bool:
        """Check conjugate symmetry of (pole, residue) pairs.

        A real rational model satisfies :math:`H(s^*) = H(s)^*`; with
        conjugate-complete poles this reduces to residues of conjugate poles
        being conjugate matrices.
        """
        used = np.zeros(self.poles.size, dtype=bool)
        for m, p in enumerate(self.poles):
            if used[m]:
                continue
            if abs(p.imag) <= 1e-12 * max(1.0, abs(p)):
                used[m] = True
                if np.max(np.abs(self.residues[m].imag)) > tol * max(
                    1.0, np.max(np.abs(self.residues[m]))
                ):
                    return False
                continue
            # Find the conjugate partner.  Poles may repeat (one copy per
            # SIMO column), so among equidistant candidates pick the one
            # whose residue actually matches.
            used[m] = True
            dist = np.where(used, np.inf, np.abs(self.poles - np.conj(p)))
            near = dist <= 1e-8 * max(1.0, abs(p))
            if not np.any(near):
                return False
            candidates = np.nonzero(near)[0]
            mismatches = [
                np.max(np.abs(self.residues[m] - np.conj(self.residues[j])))
                for j in candidates
            ]
            best = int(np.argmin(mismatches))
            j = int(candidates[best])
            used[j] = True
            if mismatches[best] > tol * max(
                1.0, float(np.max(np.abs(self.residues[m])))
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def transfer(self, s: complex) -> np.ndarray:
        """Evaluate the transfer matrix ``H(s)`` at a single complex point."""
        terms = self.residues / (s - self.poles)[:, None, None]
        out = self._d_complex + terms.sum(axis=0)
        return out

    def transfer_many(self, s_values) -> np.ndarray:
        """Evaluate ``H`` on an array of points via the Cauchy-matrix einsum.

        Returns ``(K, p, p)`` in one shot: the ``(K, M)`` Cauchy matrix
        ``1 / (s_k - p_m)`` is contracted against the residue stack with a
        single einsum — no per-point Python loop.
        """
        s_arr = ensure_vector(s_values, "s_values", dtype=complex)
        denom = s_arr[:, None] - self.poles[None, :]  # (K, M)
        return self._d_complex[None] + np.einsum(
            "km,mij->kij", 1.0 / denom, self.residues
        )

    def frequency_response(self, freqs_rad) -> np.ndarray:
        """Evaluate ``H(j w)`` on an angular-frequency grid (rad/s)."""
        freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
        return self.transfer_many(1j * freqs_rad)

    # ------------------------------------------------------------------
    # Column access (SIMO view)
    # ------------------------------------------------------------------
    def column_residues(self, k: int) -> np.ndarray:
        """Residue vectors of the k-th transfer-matrix column, ``(M, p)``."""
        if not 0 <= k < self.num_ports:
            raise IndexError(f"column index {k} out of range for p={self.num_ports}")
        return self.residues[:, :, k]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def perturb_residues(self, delta: np.ndarray) -> "PoleResidueModel":
        """Return a new model with residues ``R_m + delta[m]``.

        Used by the passivity-enforcement loop, which iteratively perturbs
        residues while keeping poles fixed.
        """
        delta = np.asarray(delta, dtype=complex)
        if delta.shape != self.residues.shape:
            raise ValueError(
                f"delta has shape {delta.shape}, expected {self.residues.shape}"
            )
        return PoleResidueModel(self.poles.copy(), self.residues + delta, self.d.copy())

    def with_d(self, d_new: np.ndarray) -> "PoleResidueModel":
        """Return a new model with the constant term replaced."""
        return PoleResidueModel(self.poles.copy(), self.residues.copy(), d_new)

    def to_dict(self) -> dict:
        """JSON-serializable dictionary (poles, residues, direct term)."""
        return {
            "num_ports": self.num_ports,
            "num_poles": self.num_poles,
            "order": self.order,
            "poles": to_jsonable(self.poles),
            "residues": to_jsonable(self.residues),
            "d": to_jsonable(self.d),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PoleResidueModel":
        """Rebuild a model from a :meth:`to_dict` payload.

        The inverse of :meth:`to_dict` used by the result store and the
        HTTP service; round-trips exactly
        (``from_dict(m.to_dict()).to_dict() == m.to_dict()``).
        """
        return cls(
            poles=complex_array_from_jsonable(payload["poles"]),
            residues=complex_array_from_jsonable(payload["residues"], ndim=3),
            d=float_array_from_jsonable(payload["d"], ndim=2),
        )

    def __repr__(self) -> str:
        return (
            f"PoleResidueModel(ports={self.num_ports}, poles={self.num_poles},"
            f" order={self.order})"
        )
