"""Structured multi-SIMO state-space realization (eq. 2 of the paper).

The realization stores, for each transfer-matrix column ``k``:

* ``A_k`` — a block-diagonal matrix holding the column's real poles as 1x1
  blocks and its complex pole pairs as 2x2 real blocks
  ``[[alpha, beta], [-beta, alpha]]`` (the real transformation of ref. [9]);
* ``u_k`` — the input vector with entry 1 for each real pole and
  ``(2, 0)`` for each complex pair;
* ``C_k`` — the ``p x m_k`` residue block.

Globally ``A = blkdiag{A_k}``, ``B = blkdiag{u_k}``, ``C = [C_1 ... C_p]``
(a multiple Single-Input-Multiple-Output structure), so ``A`` has at most
``2n`` nonzeros and ``B`` has ``n``.  All kernels below exploit this:
resolvent solves ``(A - theta I)^{-1} x`` cost O(n), transfer evaluations
and the Gramian-like products needed by the Sherman-Morrison-Woodbury
shift-invert cost O(n p).

Kernel complexity and batching
------------------------------

Every kernel broadcasts over trailing right-hand-side columns (``k``), and
the frequency-sweep kernels additionally broadcast over a *shift* axis
(``K`` evaluation points) so sweeps run as a handful of vectorized numpy
passes instead of per-point Python loops:

======================================  ==========  ==========================
kernel                                  cost        batched form
======================================  ==========  ==========================
``apply_a/apply_b/apply_bt/apply_c``    O(n k)      ``(n, k)`` blocks broadcast
``solve_shifted``                       O(n k)      ``solve_shifted_many`` —
                                                    ``(K, n[, k])``, shared rhs
``gamma`` / ``transfer``                O(n p)      ``gamma_many`` /
                                                    ``transfer_many`` — one
                                                    ``(K, n)`` Cauchy divide
                                                    plus ``p`` GEMMs into
                                                    ``(K, p, p)``
``frequency_response``                  O(K n p)    loop-free over the grid
======================================  ==========  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.macromodel.statespace import StateSpace
from repro.utils import linalg as la
from repro.utils.validation import ensure_matrix, ensure_vector

__all__ = ["SimoColumn", "SimoRealization", "segment_sum"]


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum ``values`` over contiguous segments along axis 0.

    Parameters
    ----------
    values:
        Array of shape ``(n,)`` or ``(n, k)``.
    offsets:
        Integer array of length ``num_segments + 1`` with
        ``offsets[0] == 0`` and ``offsets[-1] == n``; segment ``j`` covers
        rows ``offsets[j]:offsets[j+1]`` (segments may be empty).

    Returns
    -------
    numpy.ndarray
        Shape ``(num_segments,)`` or ``(num_segments, k)``.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.intp)
    num_segments = offsets.size - 1
    out_shape = (num_segments,) + values.shape[1:]
    if values.shape[0] == 0 or num_segments == 0:
        return np.zeros(out_shape, dtype=values.dtype)
    lengths = np.diff(offsets)
    if np.all(lengths > 0):
        return np.add.reduceat(values, offsets[:-1], axis=0)
    # General path: tolerate empty segments (reduceat mishandles them).
    out = np.zeros(out_shape, dtype=values.dtype)
    nonempty = np.nonzero(lengths > 0)[0]
    if nonempty.size:
        partial = np.add.reduceat(values, offsets[:-1][nonempty], axis=0)
        out[nonempty] = partial
    return out


@dataclass(frozen=True)
class SimoColumn:
    """Pole/residue data of one transfer-matrix column before assembly.

    Parameters
    ----------
    real_poles:
        1-D real array of the column's real poles.
    real_residues:
        ``(num_real, p)`` real residue vectors (rows align with poles).
    pair_poles:
        1-D complex array of upper-half-plane pair representatives.
    pair_residues:
        ``(num_pairs, p)`` complex residue vectors of the representatives
        (the conjugate pole implicitly carries the conjugate residue).
    """

    real_poles: np.ndarray
    real_residues: np.ndarray
    pair_poles: np.ndarray
    pair_residues: np.ndarray

    def __post_init__(self):
        rp = np.atleast_1d(np.asarray(self.real_poles, dtype=float))
        rr = np.atleast_2d(np.asarray(self.real_residues, dtype=float))
        pp = np.atleast_1d(np.asarray(self.pair_poles, dtype=complex))
        pr = np.atleast_2d(np.asarray(self.pair_residues, dtype=complex))
        if rp.size == 0:
            rr = rr.reshape(0, rr.shape[1] if rr.size else 0)
        if pp.size == 0:
            pr = pr.reshape(0, pr.shape[1] if pr.size else 0)
        if rr.shape[0] != rp.size:
            raise ValueError(
                f"real_residues rows ({rr.shape[0]}) must match real_poles ({rp.size})"
            )
        if pr.shape[0] != pp.size:
            raise ValueError(
                f"pair_residues rows ({pr.shape[0]}) must match pair_poles ({pp.size})"
            )
        if rp.size and pp.size and rr.shape[1] != pr.shape[1]:
            raise ValueError("real and pair residues must agree on port count")
        if np.any(pp.imag <= 0):
            raise ValueError("pair_poles must lie strictly in the upper half plane")
        object.__setattr__(self, "real_poles", rp)
        object.__setattr__(self, "real_residues", rr)
        object.__setattr__(self, "pair_poles", pp)
        object.__setattr__(self, "pair_residues", pr)

    @property
    def order(self) -> int:
        """States contributed by this column: one per real pole, two per pair."""
        return int(self.real_poles.size + 2 * self.pair_poles.size)

    @property
    def num_ports(self) -> int:
        """Residue vector length (0 when the column is empty)."""
        if self.real_residues.size:
            return int(self.real_residues.shape[1])
        if self.pair_residues.size:
            return int(self.pair_residues.shape[1])
        return 0

    def all_poles(self) -> np.ndarray:
        """Full complex pole list of this column (pairs expanded)."""
        out = np.concatenate(
            [
                self.real_poles.astype(complex),
                self.pair_poles,
                np.conj(self.pair_poles),
            ]
        )
        return out


class SimoRealization:
    """Assembled structured realization with O(n) kernels.

    Build instances via :func:`repro.macromodel.realization.simo_from_columns`
    or :func:`repro.macromodel.realization.pole_residue_to_simo` rather than
    calling the constructor directly.

    Attributes
    ----------
    order:
        Total dynamic order ``n``.
    num_ports:
        Number of ports ``p``.
    d:
        Direct term, ``(p, p)`` real.
    c:
        Output matrix, ``(p, n)`` real.
    """

    def __init__(self, columns: Sequence[SimoColumn], d: np.ndarray) -> None:
        d = ensure_matrix(d, "d", dtype=float)
        p = d.shape[0]
        if d.shape != (p, p):
            raise ValueError(f"d must be square, got {d.shape}")
        if len(columns) != p:
            raise ValueError(f"expected {p} columns (one per port), got {len(columns)}")
        for k, col in enumerate(columns):
            if col.order and col.num_ports != p:
                raise ValueError(
                    f"column {k} has residue length {col.num_ports}, expected {p}"
                )

        self.d = d
        self._columns: List[SimoColumn] = list(columns)
        self.column_orders = np.array([col.order for col in columns], dtype=np.intp)
        self.col_starts = np.concatenate([[0], np.cumsum(self.column_orders)])
        n = int(self.col_starts[-1])
        self.order = n
        self.num_ports = p

        real_pos: List[int] = []
        real_val: List[float] = []
        pair_pos: List[int] = []
        pair_alpha: List[float] = []
        pair_beta: List[float] = []
        b = np.zeros(n, dtype=float)
        c = np.zeros((p, n), dtype=float)
        col_of_state = np.zeros(n, dtype=np.intp)

        for k, col in enumerate(columns):
            base = int(self.col_starts[k])
            col_of_state[base : base + col.order] = k
            pos = base
            for i, pole in enumerate(col.real_poles):
                real_pos.append(pos)
                real_val.append(float(pole))
                b[pos] = 1.0
                c[:, pos] = col.real_residues[i]
                pos += 1
            for i, pole in enumerate(col.pair_poles):
                pair_pos.append(pos)
                pair_alpha.append(float(pole.real))
                pair_beta.append(float(pole.imag))
                b[pos] = 2.0
                b[pos + 1] = 0.0
                c[:, pos] = col.pair_residues[i].real
                c[:, pos + 1] = col.pair_residues[i].imag
                pos += 2

        self.real_pos = np.asarray(real_pos, dtype=np.intp)
        self.real_val = np.asarray(real_val, dtype=float)
        self.pair_pos = np.asarray(pair_pos, dtype=np.intp)
        self.pair_alpha = np.asarray(pair_alpha, dtype=float)
        self.pair_beta = np.asarray(pair_beta, dtype=float)
        self.b = b
        self.c = c
        self.col_of_state = col_of_state
        # Complex-cast direct term, computed once: transfer evaluations are
        # hot-path kernels and must not pay an astype per call.
        self._d_complex = d.astype(complex)

        # Cauchy expansion of gamma for the multi-shift transfer sweep:
        # gamma(s)[:, j] = -sum_{state in col j} res[:, state] / (s - pole).
        # Real poles carry their residue column directly (B entry 1); a 2x2
        # pair block with B entries (2, 0) and output columns (c0, c1) is
        # algebraically r/(s-q) + conj(r)/(s-conj(q)) with r = c0 + j*c1.
        cauchy_poles = np.zeros(n, dtype=complex)
        cauchy_res = np.zeros((p, n), dtype=complex)
        if self.real_pos.size:
            cauchy_poles[self.real_pos] = self.real_val
            cauchy_res[:, self.real_pos] = c[:, self.real_pos]
        if self.pair_pos.size:
            q = self.pair_alpha + 1j * self.pair_beta
            cauchy_poles[self.pair_pos] = q
            cauchy_poles[self.pair_pos + 1] = np.conj(q)
            r_vec = c[:, self.pair_pos] + 1j * c[:, self.pair_pos + 1]
            cauchy_res[:, self.pair_pos] = r_vec
            cauchy_res[:, self.pair_pos + 1] = np.conj(r_vec)
        self._cauchy_poles = cauchy_poles
        # (n, p) contiguous, pre-negated: gamma contractions are then plain
        # GEMMs with no per-call copies.
        self._cauchy_res_neg_t = np.ascontiguousarray(-cauchy_res.T)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> List[SimoColumn]:
        """The per-column pole/residue data used to assemble the realization."""
        return list(self._columns)

    def poles(self) -> np.ndarray:
        """All poles of the realization (union over columns, with repeats)."""
        parts = [col.all_poles() for col in self._columns if col.order]
        if not parts:
            return np.empty(0, dtype=complex)
        return np.concatenate(parts)

    def is_stable(self, *, margin: float = 0.0) -> bool:
        """True when every pole satisfies ``Re(p) < -margin``."""
        poles = self.poles()
        if poles.size == 0:
            return True
        return bool(np.all(poles.real < -margin))

    def spectral_radius_bound(self) -> float:
        """Upper bound on ``max |p|`` over the poles (exact for this A)."""
        best = 0.0
        if self.real_val.size:
            best = max(best, float(np.max(np.abs(self.real_val))))
        if self.pair_alpha.size:
            best = max(
                best, float(np.max(np.hypot(self.pair_alpha, self.pair_beta)))
            )
        return best

    # ------------------------------------------------------------------
    # O(n) structured kernels
    # ------------------------------------------------------------------
    def apply_a(self, x: np.ndarray, *, transpose: bool = False) -> np.ndarray:
        """Compute ``A x`` (or ``A^T x``) in O(n)."""
        x = np.asarray(x)
        out = np.zeros_like(x, dtype=np.result_type(x.dtype, float))
        if self.real_pos.size:
            out[self.real_pos] = self.real_val * x[self.real_pos] if x.ndim == 1 else (
                self.real_val[:, None] * x[self.real_pos]
            )
        if self.pair_pos.size:
            beta = -self.pair_beta if transpose else self.pair_beta
            if x.ndim == 1:
                x0 = x[self.pair_pos]
                x1 = x[self.pair_pos + 1]
                out[self.pair_pos] = self.pair_alpha * x0 + beta * x1
                out[self.pair_pos + 1] = -beta * x0 + self.pair_alpha * x1
            else:
                x0 = x[self.pair_pos]
                x1 = x[self.pair_pos + 1]
                out[self.pair_pos] = self.pair_alpha[:, None] * x0 + beta[:, None] * x1
                out[self.pair_pos + 1] = (
                    -beta[:, None] * x0 + self.pair_alpha[:, None] * x1
                )
        return out

    def solve_shifted(
        self, shift: complex, rhs: np.ndarray, *, transpose: bool = False
    ) -> np.ndarray:
        """Solve ``(A - shift I) x = rhs`` (or with ``A^T``) in O(n).

        ``rhs`` may be a vector ``(n,)`` or a block of right-hand sides
        ``(n, k)``.

        Raises
        ------
        ZeroDivisionError
            If ``shift`` coincides with a pole of the realization.
        """
        rhs = np.asarray(rhs)
        out = np.zeros(
            rhs.shape, dtype=np.result_type(rhs.dtype, np.asarray(shift).dtype)
        )
        if self.real_pos.size:
            out[self.real_pos] = la.solve_shifted_diagonal(
                self.real_val, shift, rhs[self.real_pos]
            )
        if self.pair_pos.size:
            beta = -self.pair_beta if transpose else self.pair_beta
            if rhs.ndim == 1:
                stacked = np.stack([rhs[self.pair_pos], rhs[self.pair_pos + 1]], axis=1)
                solved = la.solve_shifted_rot2(self.pair_alpha, beta, shift, stacked)
                out[self.pair_pos] = solved[:, 0]
                out[self.pair_pos + 1] = solved[:, 1]
            else:
                stacked = np.stack([rhs[self.pair_pos], rhs[self.pair_pos + 1]], axis=1)
                solved = la.solve_shifted_rot2(self.pair_alpha, beta, shift, stacked)
                out[self.pair_pos] = solved[:, 0, :]
                out[self.pair_pos + 1] = solved[:, 1, :]
        return out

    def solve_shifted_many(
        self, shifts, rhs: np.ndarray, *, transpose: bool = False
    ) -> np.ndarray:
        """Solve ``(A - shift_k I) x_k = rhs`` for a whole batch of shifts.

        The structured solves are elementwise diagonal/2x2-rotation
        operations, so the shift axis broadcasts for free: ``K`` solves cost
        one vectorized pass instead of ``K`` Python-level kernel calls.

        Parameters
        ----------
        shifts:
            1-D array of ``K`` complex shifts.
        rhs:
            Shared right-hand side, shape ``(n,)`` or ``(n, j)``.
        transpose:
            Solve against ``A^T`` instead of ``A``.

        Returns
        -------
        numpy.ndarray
            Shape ``(K, n)`` or ``(K, n, j)``.

        Raises
        ------
        ZeroDivisionError
            If any shift coincides with a pole of the realization.
        """
        shifts = ensure_vector(shifts, "shifts", dtype=complex)
        rhs = np.asarray(rhs)
        out = np.zeros(
            (shifts.size,) + rhs.shape,
            dtype=np.result_type(rhs.dtype, shifts.dtype),
        )
        if self.real_pos.size:
            out[:, self.real_pos] = la.solve_shifted_diagonal_many(
                self.real_val, shifts, rhs[self.real_pos]
            )
        if self.pair_pos.size:
            beta = -self.pair_beta if transpose else self.pair_beta
            stacked = np.stack([rhs[self.pair_pos], rhs[self.pair_pos + 1]], axis=1)
            solved = la.solve_shifted_rot2_many(self.pair_alpha, beta, shifts, stacked)
            out[:, self.pair_pos] = solved[:, :, 0]
            out[:, self.pair_pos + 1] = solved[:, :, 1]
        return out

    def apply_b(self, u: np.ndarray) -> np.ndarray:
        """Compute ``B u`` for ``u`` of shape ``(p,)`` or ``(p, k)`` — O(n)."""
        u = np.asarray(u)
        if u.ndim == 1:
            return self.b * u[self.col_of_state]
        return self.b[:, None] * u[self.col_of_state]

    def apply_bt(self, x: np.ndarray) -> np.ndarray:
        """Compute ``B^T x`` for ``x`` of shape ``(n,)`` or ``(n, k)`` — O(n)."""
        x = np.asarray(x)
        if x.ndim == 1:
            return segment_sum(self.b * x, self.col_starts)
        return segment_sum(self.b[:, None] * x, self.col_starts)

    def apply_c(self, x: np.ndarray) -> np.ndarray:
        """Compute ``C x`` — O(n p)."""
        return self.c @ np.asarray(x)

    def apply_ct(self, y: np.ndarray) -> np.ndarray:
        """Compute ``C^T y`` — O(n p)."""
        return self.c.T @ np.asarray(y)

    # ------------------------------------------------------------------
    # Transfer-function evaluation
    # ------------------------------------------------------------------
    def gamma(self, shift: complex) -> np.ndarray:
        """Compute ``C (A - shift I)^{-1} B`` in O(n p).

        This is the ``-H_theta + D`` quantity of the paper's eq. (6); note
        ``H(s) = D - gamma(s)``.
        """
        w = self.solve_shifted(shift, self.b)
        contracted = segment_sum((self.c * w).T, self.col_starts)  # (p, p): [k, j]
        return contracted.T

    def gamma_transpose(self, shift: complex) -> np.ndarray:
        """Compute ``B^T (A^T - shift I)^{-1} C^T`` in O(n p).

        Mathematically equals ``gamma(shift).T``; computed independently via
        the transpose solve, which tests exploit as a consistency check.
        """
        x = self.solve_shifted(shift, self.c.T, transpose=True)
        return segment_sum(self.b[:, None] * x, self.col_starts)

    def transfer(self, s: complex) -> np.ndarray:
        """Evaluate ``H(s) = D - C (A - s I)^{-1} B`` in O(n p)."""
        return self._d_complex - self.gamma(s)

    def gamma_many(self, shifts) -> np.ndarray:
        """Compute ``C (A - shift_k I)^{-1} B`` for a batch; ``(K, p, p)``.

        Uses the realization's precomputed Cauchy expansion: one ``(K, n)``
        complex divide builds all resolvent factors, and ``p`` per-column
        BLAS-3 contractions assemble the ``(K, p, p)`` result — O(K n p)
        total with no per-shift Python overhead.
        """
        shifts = ensure_vector(shifts, "shifts", dtype=complex)
        denom = shifts[:, None] - self._cauchy_poles[None, :]  # (K, n)
        # all() is the cheap exact-singularity test: |z| == 0 iff z == 0.
        if denom.size and not np.all(denom):
            raise ZeroDivisionError(
                "shift coincides with a pole of the realization;"
                " shifted block is singular"
            )
        inv = 1.0 / denom
        out = np.empty(
            (shifts.size, self.num_ports, self.num_ports), dtype=complex
        )
        for j in range(self.num_ports):
            sl = slice(self.col_starts[j], self.col_starts[j + 1])
            out[:, :, j] = inv[:, sl] @ self._cauchy_res_neg_t[sl]
        return out

    def transfer_many(self, s_values) -> np.ndarray:
        """Evaluate ``H`` on an array of points; returns ``(K, p, p)``.

        Loop-free multi-shift evaluation: all ``K`` points are solved in one
        broadcast pass (see :meth:`solve_shifted_many`).
        """
        s_arr = ensure_vector(s_values, "s_values", dtype=complex)
        return self._d_complex[None] - self.gamma_many(s_arr)

    def frequency_response(self, freqs_rad) -> np.ndarray:
        """Evaluate ``H(j w)`` on an angular-frequency grid; ``(K, p, p)``."""
        freqs_rad = np.asarray(freqs_rad, dtype=float)
        return self.transfer_many(1j * freqs_rad)

    # ------------------------------------------------------------------
    # Dense conversion
    # ------------------------------------------------------------------
    def dense_a(self) -> np.ndarray:
        """Assemble the dense ``(n, n)`` state matrix."""
        a = np.zeros((self.order, self.order), dtype=float)
        if self.real_pos.size:
            a[self.real_pos, self.real_pos] = self.real_val
        for pos, alpha, beta in zip(self.pair_pos, self.pair_alpha, self.pair_beta):
            a[pos, pos] = alpha
            a[pos, pos + 1] = beta
            a[pos + 1, pos] = -beta
            a[pos + 1, pos + 1] = alpha
        return a

    def dense_b(self) -> np.ndarray:
        """Assemble the dense ``(n, p)`` input matrix."""
        b = np.zeros((self.order, self.num_ports), dtype=float)
        b[np.arange(self.order), self.col_of_state] = self.b
        return b

    def to_statespace(self) -> StateSpace:
        """Convert to a dense :class:`StateSpace` (for baselines and tests)."""
        return StateSpace(self.dense_a(), self.dense_b(), self.c.copy(), self.d.copy())

    def __repr__(self) -> str:
        return (
            f"SimoRealization(order={self.order}, ports={self.num_ports},"
            f" real_poles={self.real_pos.size}, pairs={self.pair_pos.size})"
        )
