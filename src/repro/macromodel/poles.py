"""Pole-set utilities.

Rational macromodels are defined by sets of strictly stable poles: real
negative poles and complex-conjugate pairs with negative real part.  This
module provides the bookkeeping shared by the fitting, realization, and
synthesis layers: partitioning arbitrary pole arrays into real poles and
upper-half-plane pair representatives, validating conjugate symmetry,
stability checks, and stability enforcement by reflection.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_vector

__all__ = [
    "partition_poles",
    "reconstruct_poles",
    "is_stable",
    "make_stable",
    "conjugate_pairs_complete",
]

#: Relative tolerance used when matching conjugate pairs and classifying
#: poles as real.  Poles with |Im p| <= _REAL_TOL * |p| are treated as real.
_REAL_TOL = 1e-12


def partition_poles(poles) -> Tuple[np.ndarray, np.ndarray]:
    """Split a pole array into real poles and complex-pair representatives.

    Parameters
    ----------
    poles:
        1-D array of poles.  Complex poles must come in conjugate pairs
        (order-independent).

    Returns
    -------
    (real_poles, pair_poles):
        ``real_poles`` — real-valued 1-D array;
        ``pair_poles`` — complex 1-D array containing one representative per
        conjugate pair, normalized to the upper half plane (``Im > 0``).

    Raises
    ------
    ValueError
        If a complex pole lacks its conjugate partner.
    """
    arr = ensure_vector(poles, "poles", dtype=complex, allow_empty=True)
    scale = np.abs(arr)
    is_real = np.abs(arr.imag) <= _REAL_TOL * np.maximum(scale, 1.0)
    real_poles = arr[is_real].real.copy()
    complex_poles = arr[~is_real]

    uppers = []
    remaining = list(complex_poles)
    while remaining:
        z = remaining.pop(0)
        target = np.conj(z)
        tol = _REAL_TOL * max(abs(z), 1.0) + 1e-300
        match_idx = None
        best = np.inf
        for i, w in enumerate(remaining):
            dist = abs(w - target)
            if dist < best:
                best = dist
                match_idx = i
        if match_idx is None or best > 1e-8 * max(abs(z), 1.0):
            raise ValueError(f"complex pole {z} has no conjugate partner (tol={tol})")
        remaining.pop(match_idx)
        uppers.append(z if z.imag > 0 else np.conj(z))
    pair_poles = np.asarray(uppers, dtype=complex)
    return real_poles, pair_poles


def reconstruct_poles(real_poles, pair_poles) -> np.ndarray:
    """Inverse of :func:`partition_poles`: expand pairs back to a full set.

    The result lists real poles first, then each pair as
    ``(p, conj(p))`` — the canonical ordering used by the realization layer.
    """
    real_poles = ensure_vector(real_poles, "real_poles", dtype=float, allow_empty=True)
    pair_poles = ensure_vector(
        pair_poles, "pair_poles", dtype=complex, allow_empty=True
    )
    full = np.empty(real_poles.size + 2 * pair_poles.size, dtype=complex)
    full[: real_poles.size] = real_poles
    full[real_poles.size :: 2][: pair_poles.size] = pair_poles
    full[real_poles.size + 1 :: 2][: pair_poles.size] = np.conj(pair_poles)
    return full


def conjugate_pairs_complete(poles) -> bool:
    """True when every complex pole has a conjugate partner in the set."""
    try:
        partition_poles(poles)
    except ValueError:
        return False
    return True


def is_stable(poles, *, strict: bool = True, margin: float = 0.0) -> bool:
    """Check that every pole lies in the open (or closed) left half plane.

    Parameters
    ----------
    poles:
        1-D pole array.
    strict:
        When true (default), poles on the imaginary axis are rejected.
    margin:
        Require ``Re(p) <= -margin`` (a positive stability margin).
    """
    arr = ensure_vector(poles, "poles", dtype=complex, allow_empty=True)
    if arr.size == 0:
        return True
    re = arr.real
    if strict:
        return bool(np.all(re < -margin))
    return bool(np.all(re <= -margin))


def make_stable(poles, *, min_real: float = 0.0) -> np.ndarray:
    """Reflect unstable poles into the left half plane.

    Right-half-plane poles are mirrored (``Re -> -Re``), the standard
    stabilization step in Vector Fitting pole relocation.  Poles exactly on
    the imaginary axis are pushed to ``-min_real`` when a positive
    ``min_real`` is supplied (otherwise left untouched).

    Returns a new array; the input is not modified.
    """
    arr = ensure_vector(poles, "poles", dtype=complex, allow_empty=True).copy()
    flip = arr.real > 0.0
    arr[flip] -= 2.0 * arr[flip].real  # mirror Re(p) -> -Re(p), keep Im(p)
    if min_real > 0.0:
        on_axis = arr.real == 0.0
        arr[on_axis] -= min_real
    return arr
