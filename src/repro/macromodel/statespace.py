"""Generic dense state-space macromodel ``H(s) = D + C (sI - A)^{-1} B``.

This is the reference representation (eq. 1 of the paper): no structural
assumptions, dense linear algebra throughout.  It serves three roles:

* ground truth for the structured SIMO realization (tests compare transfer
  evaluations and Hamiltonian spectra);
* input to the dense O(n^3) Hamiltonian baseline of Sec. III;
* a convenient interchange container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_matrix, ensure_sorted_frequencies

__all__ = ["StateSpace"]


@dataclass(frozen=True)
class StateSpace:
    """Immutable dense state-space realization.

    Parameters
    ----------
    a:
        State matrix, ``(n, n)`` real.
    b:
        Input matrix, ``(n, p)`` real.
    c:
        Output matrix, ``(p, n)`` real.
    d:
        Direct term, ``(p, p)`` real.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self):
        a = ensure_matrix(self.a, "a", dtype=float)
        b = ensure_matrix(self.b, "b", dtype=float)
        c = ensure_matrix(self.c, "c", dtype=float)
        d = ensure_matrix(self.d, "d", dtype=float)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError(f"a must be square, got {a.shape}")
        if b.shape[0] != n:
            raise ValueError(f"b must have {n} rows, got {b.shape}")
        p = b.shape[1]
        if c.shape != (p, n):
            raise ValueError(f"c must have shape ({p}, {n}), got {c.shape}")
        if d.shape != (p, p):
            raise ValueError(f"d must have shape ({p}, {p}), got {d.shape}")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", d)

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Dynamic order n (number of states)."""
        return int(self.a.shape[0])

    @property
    def num_ports(self) -> int:
        """Number of ports p."""
        return int(self.d.shape[0])

    def poles(self) -> np.ndarray:
        """Eigenvalues of A (the model poles)."""
        if self.order == 0:
            return np.empty(0, dtype=complex)
        return np.linalg.eigvals(self.a)

    def is_stable(self, *, margin: float = 0.0) -> bool:
        """True when every pole satisfies ``Re(p) < -margin``."""
        if self.order == 0:
            return True
        return bool(np.all(self.poles().real < -margin))

    # ------------------------------------------------------------------
    def transfer(self, s: complex) -> np.ndarray:
        """Evaluate ``H(s)`` with one dense solve (O(n^3))."""
        n = self.order
        if n == 0:
            return self.d.astype(complex)
        shifted = s * np.eye(n) - self.a
        x = np.linalg.solve(shifted, self.b.astype(complex))
        return self.d.astype(complex) + self.c @ x

    def frequency_response(self, freqs_rad) -> np.ndarray:
        """Evaluate ``H(j w)`` on an angular-frequency grid; ``(K, p, p)``."""
        freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
        return np.stack([self.transfer(1j * w) for w in freqs_rad])

    # ------------------------------------------------------------------
    def similarity(self, t: np.ndarray) -> "StateSpace":
        """Apply a similarity transform ``(T A T^-1, T B, C T^-1, D)``.

        The transfer matrix is invariant under this operation — used by
        tests to verify representation independence of the passivity
        characterization.
        """
        t = ensure_matrix(t, "t", dtype=float)
        n = self.order
        if t.shape != (n, n):
            raise ValueError(f"t must be ({n}, {n}), got {t.shape}")
        t_inv = np.linalg.inv(t)
        return StateSpace(t @ self.a @ t_inv, t @ self.b, self.c @ t_inv, self.d.copy())

    def __repr__(self) -> str:
        return f"StateSpace(order={self.order}, ports={self.num_ports})"
