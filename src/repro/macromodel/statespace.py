"""Generic dense state-space macromodel ``H(s) = D + C (sI - A)^{-1} B``.

This is the reference representation (eq. 1 of the paper): no structural
assumptions, dense linear algebra throughout.  It serves three roles:

* ground truth for the structured SIMO realization (tests compare transfer
  evaluations and Hamiltonian spectra);
* input to the dense O(n^3) Hamiltonian baseline of Sec. III;
* a convenient interchange container.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_matrix, ensure_sorted_frequencies

__all__ = ["StateSpace"]


@dataclass(frozen=True)
class StateSpace:
    """Immutable dense state-space realization.

    Parameters
    ----------
    a:
        State matrix, ``(n, n)`` real.
    b:
        Input matrix, ``(n, p)`` real.
    c:
        Output matrix, ``(p, n)`` real.
    d:
        Direct term, ``(p, p)`` real.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self):
        a = ensure_matrix(self.a, "a", dtype=float)
        b = ensure_matrix(self.b, "b", dtype=float)
        c = ensure_matrix(self.c, "c", dtype=float)
        d = ensure_matrix(self.d, "d", dtype=float)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError(f"a must be square, got {a.shape}")
        if b.shape[0] != n:
            raise ValueError(f"b must have {n} rows, got {b.shape}")
        p = b.shape[1]
        if c.shape != (p, n):
            raise ValueError(f"c must have shape ({p}, {n}), got {c.shape}")
        if d.shape != (p, p):
            raise ValueError(f"d must have shape ({p}, {p}), got {d.shape}")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", d)
        # Complex casts computed once; transfer evaluation is called in
        # tight sweeps and must not re-cast on every point.
        object.__setattr__(self, "_b_complex", b.astype(complex))
        object.__setattr__(self, "_d_complex", d.astype(complex))

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Dynamic order n (number of states)."""
        return int(self.a.shape[0])

    @property
    def num_ports(self) -> int:
        """Number of ports p."""
        return int(self.d.shape[0])

    def poles(self) -> np.ndarray:
        """Eigenvalues of A (the model poles)."""
        if self.order == 0:
            return np.empty(0, dtype=complex)
        return np.linalg.eigvals(self.a)

    def is_stable(self, *, margin: float = 0.0) -> bool:
        """True when every pole satisfies ``Re(p) < -margin``."""
        if self.order == 0:
            return True
        return bool(np.all(self.poles().real < -margin))

    # ------------------------------------------------------------------
    def transfer(self, s: complex) -> np.ndarray:
        """Evaluate ``H(s)`` with one dense solve (O(n^3))."""
        n = self.order
        if n == 0:
            return self._d_complex.copy()
        shifted = s * np.eye(n) - self.a
        x = np.linalg.solve(shifted, self._b_complex)
        return self._d_complex + self.c @ x

    def transfer_many(self, s_values, *, max_chunk_bytes: int = 1 << 27) -> np.ndarray:
        """Evaluate ``H`` on an array of points; returns ``(K, p, p)``.

        The shifted systems are solved as *stacked* LAPACK calls — one
        batched ``numpy.linalg.solve`` over ``(chunk, n, n)`` instead of a
        Python loop of ``K`` dense solves.  Chunking bounds the transient
        ``(chunk, n, n)`` workspace at roughly ``max_chunk_bytes``.
        """
        s_arr = np.asarray(s_values, dtype=complex).reshape(-1)
        n = self.order
        p = self.num_ports
        if n == 0 or s_arr.size == 0:
            out = np.empty((s_arr.size, p, p), dtype=complex)
            out[:] = self._d_complex
            return out
        chunk = max(1, int(max_chunk_bytes // (16 * n * n)))
        eye = np.eye(n)
        out = np.empty((s_arr.size, p, p), dtype=complex)
        for start in range(0, s_arr.size, chunk):
            block = s_arr[start : start + chunk]
            shifted = block[:, None, None] * eye[None] - self.a[None]
            x = np.linalg.solve(shifted, self._b_complex[None])
            out[start : start + block.size] = self._d_complex[None] + self.c @ x
        return out

    def frequency_response(self, freqs_rad) -> np.ndarray:
        """Evaluate ``H(j w)`` on an angular-frequency grid; ``(K, p, p)``."""
        freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
        return self.transfer_many(1j * freqs_rad)

    # ------------------------------------------------------------------
    def similarity(self, t: np.ndarray) -> "StateSpace":
        """Apply a similarity transform ``(T A T^-1, T B, C T^-1, D)``.

        The transfer matrix is invariant under this operation — used by
        tests to verify representation independence of the passivity
        characterization.
        """
        t = ensure_matrix(t, "t", dtype=float)
        n = self.order
        if t.shape != (n, n):
            raise ValueError(f"t must be ({n}, {n}), got {t.shape}")
        t_inv = np.linalg.inv(t)
        return StateSpace(t @ self.a @ t_inv, t @ self.b, self.c @ t_inv, self.d.copy())

    def __repr__(self) -> str:
        return f"StateSpace(order={self.order}, ports={self.num_ports})"
