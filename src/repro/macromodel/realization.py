"""Builders that turn pole/residue data into structured SIMO realizations.

The central entry point is :func:`pole_residue_to_simo`, which maps a
:class:`~repro.macromodel.rational.PoleResidueModel` (e.g. the output of
Vector Fitting) to the block-diagonal realization of the paper's eq. (2),
applying the real 2x2 transformation of ref. [9] to complex pole pairs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.macromodel.poles import partition_poles
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoColumn, SimoRealization
from repro.utils.validation import ensure_matrix, ensure_vector

__all__ = ["realize_column", "simo_from_columns", "pole_residue_to_simo"]


def realize_column(poles, residues) -> SimoColumn:
    """Build one SIMO column from a pole list and residue vectors.

    Parameters
    ----------
    poles:
        1-D pole array (conjugate-complete complex entries allowed).
    residues:
        ``(num_poles, p)`` residue vectors; row ``m`` is the residue vector
        of ``poles[m]``.  Residues of conjugate pole pairs must be
        conjugates of each other (within round-off).

    Returns
    -------
    SimoColumn
        Real 1x1 blocks for real poles, 2x2 blocks for pairs.

    Raises
    ------
    ValueError
        On a conjugate-incomplete pole set or inconsistent residue symmetry.
    """
    poles = ensure_vector(poles, "poles", dtype=complex, allow_empty=True)
    residues = np.atleast_2d(np.asarray(residues, dtype=complex))
    if poles.size == 0:
        return SimoColumn(
            np.empty(0), np.empty((0, 0)), np.empty(0, dtype=complex), np.empty((0, 0))
        )
    if residues.shape[0] != poles.size:
        raise ValueError(
            f"residues rows ({residues.shape[0]}) must match poles ({poles.size})"
        )
    p = residues.shape[1]

    real_poles, pair_poles = partition_poles(poles)
    real_residues = np.zeros((real_poles.size, p), dtype=float)
    pair_residues = np.zeros((pair_poles.size, p), dtype=complex)

    used = np.zeros(poles.size, dtype=bool)

    # Match real poles to rows of the input (greedy nearest, each row once).
    for i, rp in enumerate(real_poles):
        dist = np.where(used, np.inf, np.abs(poles - rp))
        j = int(np.argmin(dist))
        if not np.isfinite(dist[j]):
            raise ValueError("internal pole matching failure for real pole")
        used[j] = True
        res = residues[j]
        if np.max(np.abs(res.imag)) > 1e-8 * max(1.0, float(np.max(np.abs(res)))):
            raise ValueError(
                f"residue of real pole {rp} has a non-negligible imaginary part"
            )
        real_residues[i] = res.real

    for i, pp in enumerate(pair_poles):
        dist = np.where(used, np.inf, np.abs(poles - pp))
        j = int(np.argmin(dist))
        used[j] = True
        pair_residues[i] = residues[j]
        # Locate and validate the conjugate partner's residue.  Pole sets
        # may contain repeated values (one copy per SIMO column), so among
        # equidistant conjugate candidates pick the one whose residue
        # matches best, then validate.
        dist_c = np.where(used, np.inf, np.abs(poles - np.conj(pp)))
        near = dist_c <= max(1e-8 * max(abs(pp), 1.0), float(np.min(dist_c)))
        if not np.any(np.isfinite(dist_c)):
            raise ValueError(f"pole {pp} lacks a conjugate partner")
        candidates = np.nonzero(near)[0]
        mismatches = [
            float(np.max(np.abs(residues[jc] - np.conj(residues[j]))))
            for jc in candidates
        ]
        best = int(np.argmin(mismatches))
        jc = int(candidates[best])
        used[jc] = True
        mismatch = mismatches[best]
        scale = max(1.0, float(np.max(np.abs(residues[j]))))
        if mismatch > 1e-6 * scale:
            raise ValueError(
                f"residues of conjugate pair around {pp} are not conjugate"
                f" (mismatch {mismatch:.3e})"
            )

    return SimoColumn(real_poles, real_residues, pair_poles, pair_residues)


def simo_from_columns(columns: Sequence[SimoColumn], d) -> SimoRealization:
    """Assemble a :class:`SimoRealization` from per-column data."""
    d = ensure_matrix(d, "d", dtype=float)
    return SimoRealization(columns, d)


def pole_residue_to_simo(model: PoleResidueModel) -> SimoRealization:
    """Convert a pole/residue model to the structured realization of eq. (2).

    Every column of the transfer matrix uses the model's full pole set (the
    common-pole case produced by Vector Fitting); columns whose residue
    vector for some pole is identically zero still carry the pole — exact
    minimality is not required by the eigensolver and keeping the uniform
    layout simplifies indexing.
    """
    if not isinstance(model, PoleResidueModel):
        raise TypeError(f"expected PoleResidueModel, got {type(model).__name__}")
    columns = [
        realize_column(model.poles, model.column_residues(k))
        for k in range(model.num_ports)
    ]
    return SimoRealization(columns, model.d)
