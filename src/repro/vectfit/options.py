"""Vector Fitting configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import (
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["VectorFittingOptions"]


@dataclass(frozen=True)
class VectorFittingOptions:
    """Tuning knobs of the Vector Fitting iteration.

    Parameters
    ----------
    iterations:
        Pole-relocation sweeps (each solves one sigma least-squares
        problem and re-identifies the poles).
    enforce_stability:
        Flip relocated poles into the left half plane (the standard
        choice for macromodeling).
    fit_direct_term:
        Include a constant term ``D`` in the fit basis.
    weighting:
        ``"uniform"`` or ``"inverse_magnitude"`` (rows scaled by
        ``1/|H|``, emphasizing relative accuracy).
    real_pole_fraction:
        Fraction of real poles in the starting pole set.
    initial_damping_ratio:
        ``|Re p| / |Im p|`` of the complex starting poles (the classical
        recipe uses a small value like 0.01).
    convergence_tol:
        Relative pole movement below which the relocation loop stops
        early.
    """

    iterations: int = 12
    enforce_stability: bool = True
    fit_direct_term: bool = True
    weighting: str = "uniform"
    real_pole_fraction: float = 0.0
    initial_damping_ratio: float = 0.01
    convergence_tol: float = 1e-10

    def __post_init__(self):
        ensure_positive_int(self.iterations, "iterations")
        ensure_positive_float(self.initial_damping_ratio, "initial_damping_ratio")
        ensure_positive_float(self.convergence_tol, "convergence_tol")
        if self.weighting not in ("uniform", "inverse_magnitude"):
            raise ValueError(
                f"unknown weighting {self.weighting!r}; expected 'uniform' or"
                " 'inverse_magnitude'"
            )
        if not 0.0 <= self.real_pole_fraction <= 1.0:
            raise ValueError(
                f"real_pole_fraction must be in [0, 1], got {self.real_pole_fraction}"
            )

    def with_(self, **changes) -> "VectorFittingOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
