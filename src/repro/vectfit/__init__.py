"""Vector Fitting: rational macromodel identification from frequency data.

The paper's macromodels are "identified from tabulated frequency
responses, typically available from a full-wave solver or from direct
measurement, using rational curve fitting" (ref. [1], Gustavsen &
Semlyen).  This subpackage implements the classical Vector Fitting
algorithm with pole relocation, unstable-pole flipping, and common poles
across all matrix entries — exactly the model shape the structured SIMO
realization of eq. (2) consumes.
"""

from repro.vectfit.options import VectorFittingOptions
from repro.vectfit.vector_fitting import (
    FitResult,
    initial_poles,
    vector_fit,
)

__all__ = ["VectorFittingOptions", "FitResult", "initial_poles", "vector_fit"]
