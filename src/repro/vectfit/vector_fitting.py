"""The Vector Fitting algorithm (Gustavsen & Semlyen, ref. [1]).

Given samples ``H(j w_k)`` of a ``p x p`` transfer matrix, Vector Fitting
finds a common-pole rational approximation

.. math::

    H(s) \\approx D + \\sum_{m=1}^{M} \\frac{R_m}{s - p_m}

by iterating two linear least-squares stages:

1. **sigma stage** — with the current pole set, fit
   ``sigma(s) H(s) ~ (sum c_m phi_m(s)) + D`` and
   ``sigma(s) = 1 + sum sigma_m phi_m(s)`` jointly; the *zeros* of
   ``sigma`` are better pole estimates ("pole relocation").  The zeros are
   the eigenvalues of ``A_sigma - b_sigma c_sigma^T`` built from the real
   block realization of the basis.
2. **residue stage** — with the relocated (and stability-flipped) poles,
   fit the residue matrices and direct term by ordinary least squares.

Everything is formulated in real arithmetic through the conjugate-pair
basis ``phi_1 = 1/(s-q) + 1/(s-q*)``, ``phi_2 = j/(s-q) - j/(s-q*)`` so the
resulting model is exactly real (conjugate-symmetric residues).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.macromodel.poles import make_stable, partition_poles
from repro.obs import trace as _obs_trace
from repro.obs.metrics import get_registry as _obs_metrics
from repro.macromodel.rational import PoleResidueModel
from repro.utils.guards import ensure_finite
from repro.utils.validation import ensure_positive_int, ensure_sorted_frequencies
from repro.vectfit.options import VectorFittingOptions

__all__ = ["FitResult", "initial_poles", "vector_fit"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a Vector Fitting run.

    Attributes
    ----------
    model:
        The identified pole/residue macromodel.
    rms_error:
        Root-mean-square absolute fit error over all samples and entries.
    max_error:
        Worst-case absolute entry error.
    iterations:
        Pole-relocation sweeps actually performed.
    converged:
        True when the pole set stopped moving before the iteration cap.
    pole_history:
        Pole set after every relocation sweep (first entry: start poles).
    """

    model: PoleResidueModel
    rms_error: float
    max_error: float
    iterations: int
    converged: bool
    pole_history: Tuple[np.ndarray, ...]

    def to_dict(self, *, include_model: bool = True) -> dict:
        """JSON-serializable dictionary of the fit outcome."""
        payload = {
            "rms_error": float(self.rms_error),
            "max_error": float(self.max_error),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "num_poles": int(self.model.num_poles),
            "num_ports": int(self.model.num_ports),
        }
        if include_model:
            payload["model"] = self.model.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FitResult":
        """Rebuild a fit outcome from a :meth:`to_dict` payload.

        Requires ``include_model=True`` payloads.  ``pole_history`` is
        not serialized, so a rebuilt result carries an empty history —
        the ``to_dict()`` round trip is exact regardless.
        """
        return cls(
            model=PoleResidueModel.from_dict(payload["model"]),
            rms_error=float(payload["rms_error"]),
            max_error=float(payload["max_error"]),
            iterations=int(payload["iterations"]),
            converged=bool(payload["converged"]),
            pole_history=(),
        )


def initial_poles(
    freqs_rad,
    num_poles: int,
    *,
    real_fraction: float = 0.0,
    damping_ratio: float = 0.01,
) -> np.ndarray:
    """Classical Vector Fitting starting poles.

    Complex pairs with imaginary parts spread linearly over the sampled
    band and small negative real parts ``-damping_ratio * |Im|``; an
    optional leading group of real poles spread logarithmically.

    Parameters
    ----------
    freqs_rad:
        Sample frequencies (rad/s), used only for their extent.
    num_poles:
        Total starting pole count.
    real_fraction:
        Fraction of poles that are real (rounded; remainder must be even).
    damping_ratio:
        ``|Re| / |Im|`` of the complex starting poles.
    """
    freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
    num_poles = ensure_positive_int(num_poles, "num_poles")
    w_max = float(freqs_rad[-1]) if freqs_rad[-1] > 0 else 1.0
    w_min = (
        float(freqs_rad[freqs_rad > 0][0]) if np.any(freqs_rad > 0) else w_max / 100.0
    )

    num_real = int(round(real_fraction * num_poles))
    if (num_poles - num_real) % 2:
        num_real += 1
    num_pairs = (num_poles - num_real) // 2

    poles = np.empty(num_poles, dtype=complex)
    if num_real:
        poles[:num_real] = -np.exp(
            np.linspace(np.log(max(w_min, 1e-6)), np.log(w_max), num_real)
        )
    if num_pairs:
        w0 = np.linspace(max(w_min, w_max / 100.0), w_max, num_pairs)
        pairs = -damping_ratio * w0 + 1j * w0
        poles[num_real::2] = pairs
        poles[num_real + 1 :: 2] = np.conj(pairs)
    return poles


def _basis(
    freqs_rad: np.ndarray, poles: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Real-coefficient partial-fraction basis evaluated at ``j w``.

    Returns ``(phi, real_poles, pair_poles)`` with ``phi`` of shape
    ``(K, M)`` complex: one column per real pole, two per conjugate pair.
    The whole ``(K, M)`` Cauchy-basis block is built by broadcasting — no
    per-pole Python loop.
    """
    real_poles, pair_poles = partition_poles(poles)
    s = 1j * freqs_rad
    num_real = real_poles.size
    phi = np.empty((s.size, num_real + 2 * pair_poles.size), dtype=complex)
    if num_real:
        phi[:, :num_real] = 1.0 / (s[:, None] - real_poles[None, :])
    if pair_poles.size:
        inv_up = 1.0 / (s[:, None] - pair_poles[None, :])
        inv_dn = 1.0 / (s[:, None] - np.conj(pair_poles)[None, :])
        phi[:, num_real::2] = inv_up + inv_dn
        phi[:, num_real + 1 :: 2] = 1j * (inv_up - inv_dn)
    return phi, real_poles, pair_poles


def _sigma_realization(
    real_poles: np.ndarray, pair_poles: np.ndarray, sigma: np.ndarray
) -> np.ndarray:
    """Zeros of ``1 + sum sigma_m phi_m``: eigenvalues of ``A - b c^T``."""
    num_real = real_poles.size
    m = num_real + 2 * pair_poles.size
    a = np.zeros((m, m))
    b = np.zeros(m)
    if num_real:
        idx = np.arange(num_real)
        a[idx, idx] = real_poles
        b[idx] = 1.0
    if pair_poles.size:
        pos = num_real + 2 * np.arange(pair_poles.size)
        a[pos, pos] = pair_poles.real
        a[pos, pos + 1] = pair_poles.imag
        a[pos + 1, pos] = -pair_poles.imag
        a[pos + 1, pos + 1] = pair_poles.real
        b[pos] = 2.0
    return np.linalg.eigvals(a - np.outer(b, sigma))


def _symmetrize(poles: np.ndarray) -> np.ndarray:
    """Force exact conjugate symmetry on a numerically computed pole set."""
    real_tol = 1e-9
    scale = np.maximum(np.abs(poles), 1.0)
    is_real = np.abs(poles.imag) <= real_tol * scale
    reals = poles[is_real].real
    uppers = poles[(~is_real) & (poles.imag > 0)]
    lowers = poles[(~is_real) & (poles.imag < 0)]
    # Pair each upper with its nearest lower conjugate and average.
    symmetric = []
    lowers = list(lowers)
    for q in uppers:
        if lowers:
            dist = [abs(np.conj(w) - q) for w in lowers]
            j = int(np.argmin(dist))
            partner = lowers.pop(j)
            q = 0.5 * (q + np.conj(partner))
        symmetric.append(q)
    # Unmatched lowers become their own uppers.
    symmetric.extend(np.conj(w) for w in lowers)
    out = np.empty(reals.size + 2 * len(symmetric), dtype=complex)
    out[: reals.size] = reals
    out[reals.size :: 2] = symmetric
    out[reals.size + 1 :: 2] = np.conj(symmetric)
    return out


def _stack_real(matrix: np.ndarray, *, axis: int = 0) -> np.ndarray:
    """Stack real and imaginary parts along ``axis``.

    With ``axis=1`` this turns a complex ``(E, K, F)`` stack of per-element
    blocks into the real ``(E, 2K, F)`` LS blocks consumed by the batched
    QR factorizations below.
    """
    return np.concatenate([matrix.real, matrix.imag], axis=axis)


def vector_fit(
    freqs_rad,
    responses,
    num_poles: int,
    *,
    options: Optional[VectorFittingOptions] = None,
    start_poles: Optional[np.ndarray] = None,
) -> FitResult:
    """Fit a common-pole rational model to tabulated frequency samples.

    Parameters
    ----------
    freqs_rad:
        Strictly increasing sample frequencies (rad/s), length K >= 2.
    responses:
        Samples ``H(j w_k)``, shape ``(K, p, p)`` (or ``(K,)`` for scalar
        data, treated as 1x1).
    num_poles:
        Model order ``M`` (number of poles).
    options:
        :class:`VectorFittingOptions`.
    start_poles:
        Explicit starting pole set (conjugate-complete); defaults to
        :func:`initial_poles`.

    Returns
    -------
    FitResult

    Raises
    ------
    ValueError
        On inconsistent shapes or too few samples for the requested order.
    """
    fit_started = time.perf_counter()
    options = options if options is not None else VectorFittingOptions()
    freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
    responses = np.asarray(responses, dtype=complex)
    # NaN/Inf samples would propagate silently through the least-squares
    # stages and surface as inexplicable garbage poles — fail here with
    # a structured diagnostic instead.
    ensure_finite(responses, stage="fit", what="frequency samples")
    if responses.ndim == 1:
        responses = responses[:, None, None]
    if responses.ndim != 3 or responses.shape[1] != responses.shape[2]:
        raise ValueError(
            f"responses must have shape (K, p, p), got {responses.shape}"
        )
    if responses.shape[0] != freqs_rad.size:
        raise ValueError(
            f"got {responses.shape[0]} samples but {freqs_rad.size} frequencies"
        )
    k_samples = freqs_rad.size
    p = responses.shape[1]
    num_unknowns = num_poles + (1 if options.fit_direct_term else 0)
    if 2 * k_samples < num_unknowns + num_poles:
        raise ValueError(
            f"too few samples ({k_samples}) for order {num_poles};"
            " need at least (order + unknowns) / 2"
        )

    poles = (
        np.asarray(start_poles, dtype=complex)
        if start_poles is not None
        else initial_poles(
            freqs_rad,
            num_poles,
            real_fraction=options.real_pole_fraction,
            damping_ratio=options.initial_damping_ratio,
        )
    )
    if poles.size != num_poles:
        raise ValueError(
            f"start_poles has {poles.size} poles, expected {num_poles}"
        )

    flat = responses.reshape(k_samples, p * p)  # (K, E)
    weights = np.ones((k_samples, p * p))
    if options.weighting == "inverse_magnitude":
        weights = 1.0 / np.maximum(np.abs(flat), 1e-2 * np.abs(flat).max() + 1e-30)

    history: List[np.ndarray] = [poles.copy()]
    converged = False
    iterations_run = 0
    for iteration in range(options.iterations):
        iterations_run = iteration + 1
        with _obs_trace.span("vectfit.relocate", iteration=iteration):
            new_poles = _relocate_poles(
                freqs_rad, flat, weights, poles, options
            )
        move = _pole_movement(poles, new_poles)
        poles = new_poles
        history.append(poles.copy())
        if move < options.convergence_tol:
            converged = True
            break

    with _obs_trace.span("vectfit.residues"):
        model = _identify_residues(
            freqs_rad, flat, weights, poles, p, options
        )
    fitted = model.frequency_response(freqs_rad).reshape(k_samples, p * p)
    # A fit that went numerically off the rails (overflowed residues,
    # divergent pole relocation) must be reported as such, not returned
    # as a "model" whose responses are NaN.
    ensure_finite(fitted, stage="fit", what="fitted model response")
    err = np.abs(fitted - flat)
    _obs_metrics().count("vectfit.fits")
    _obs_metrics().count("vectfit.iterations", iterations_run)
    _obs_metrics().observe(
        "vectfit.fit", time.perf_counter() - fit_started
    )
    return FitResult(
        model=model,
        rms_error=float(np.sqrt(np.mean(err**2))),
        max_error=float(err.max()) if err.size else 0.0,
        iterations=iterations_run,
        converged=converged,
        pole_history=tuple(history),
    )


def _pole_movement(old: np.ndarray, new: np.ndarray) -> float:
    """Relative pole displacement between sweeps (greedy matching)."""
    if old.size != new.size:
        return np.inf
    remaining = list(new)
    worst = 0.0
    for pole in old:
        dist = [abs(pole - q) for q in remaining]
        j = int(np.argmin(dist))
        worst = max(worst, dist[j] / max(1.0, abs(pole)))
        remaining.pop(j)
    return worst


def _relocate_poles(
    freqs_rad: np.ndarray,
    flat: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VectorFittingOptions,
) -> np.ndarray:
    """One sigma stage: solve for sigma coefficients, return new poles."""
    phi, real_poles, pair_poles = _basis(freqs_rad, poles)
    k_samples, num_funcs = phi.shape
    const = (
        np.ones((k_samples, 1)) if options.fit_direct_term else np.zeros((k_samples, 0))
    )
    basis = np.concatenate([phi, const.astype(complex)], axis=1)  # (K, F)

    # Per-element projection of the sigma block onto the orthogonal
    # complement of the residue block (the "fast VF" reduction).  All
    # elements are assembled at once as stacked ``(E, 2K, .)`` real blocks
    # and projected through ONE batched QR — no per-element Python loop —
    # then one stacked least-squares yields the shared sigma coefficients.
    w3 = weights.T[:, :, None]  # (E, K, 1)
    a_blocks = _stack_real(basis[None, :, :] * w3, axis=1)  # (E, 2K, F)
    b_blocks = _stack_real(
        -(flat.T[:, :, None] * phi[None, :, :]) * w3, axis=1
    )  # (E, 2K, M)
    rhs = _stack_real((flat * weights).T[:, :, None], axis=1)  # (E, 2K, 1)
    q, _ = np.linalg.qr(a_blocks)
    qt = np.swapaxes(q, 1, 2)
    b_proj = b_blocks - q @ (qt @ b_blocks)
    r_proj = rhs - q @ (qt @ rhs)
    g = b_proj.reshape(-1, b_proj.shape[2])
    b = r_proj.reshape(-1)
    sigma, *_ = np.linalg.lstsq(g, b, rcond=None)

    zeros = _sigma_realization(real_poles, pair_poles, sigma)
    if options.enforce_stability:
        zeros = make_stable(
            zeros, min_real=1e-12 * max(1.0, float(np.abs(zeros).max()))
        )
    return _symmetrize(zeros)


def _identify_residues(
    freqs_rad: np.ndarray,
    flat: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    p: int,
    options: VectorFittingOptions,
) -> PoleResidueModel:
    """Final residue stage with fixed poles.

    All ``p^2`` element fits share one ``(E, 2K, F)`` stacked assembly and
    one batched QR least-squares solve; a per-element ``lstsq`` fallback
    covers the (rank-deficient) corner the fast path cannot factor.
    """
    phi, real_poles, pair_poles = _basis(freqs_rad, poles)
    k_samples, num_funcs = phi.shape
    const = (
        np.ones((k_samples, 1)) if options.fit_direct_term else np.zeros((k_samples, 0))
    )
    basis = np.concatenate([phi, const.astype(complex)], axis=1)

    num_elems = flat.shape[1]
    w3 = weights.T[:, :, None]  # (E, K, 1)
    a_blocks = _stack_real(basis[None, :, :] * w3, axis=1)  # (E, 2K, F)
    rhs = _stack_real((flat * weights).T[:, :, None], axis=1)  # (E, 2K, 1)
    try:
        q, r = np.linalg.qr(a_blocks)
        sol = np.linalg.solve(r, np.swapaxes(q, 1, 2) @ rhs)  # (E, F, 1)
        if not np.all(np.isfinite(sol)):
            raise np.linalg.LinAlgError("batched QR solve not finite")
        coeffs = sol[:, :, 0].T  # (F, E)
    except np.linalg.LinAlgError:
        # Rank-deficient basis on some element: redo with per-element lstsq.
        coeffs = np.zeros((basis.shape[1], num_elems))
        for e in range(num_elems):
            sol_e, *_ = np.linalg.lstsq(a_blocks[e], rhs[e, :, 0], rcond=None)
            coeffs[:, e] = sol_e

    # Unpack into residue matrices (order: real poles, then pairs).
    num_real = real_poles.size
    num_pairs = pair_poles.size
    m_total = num_real + 2 * num_pairs
    residues = np.zeros((m_total, p, p), dtype=complex)
    ordered_poles = np.empty(m_total, dtype=complex)
    if num_real:
        ordered_poles[:num_real] = real_poles
        residues[:num_real] = coeffs[:num_real].reshape(num_real, p, p)
    if num_pairs:
        pair_rows = coeffs[num_real : num_real + 2 * num_pairs]
        blocks = (pair_rows[0::2] + 1j * pair_rows[1::2]).reshape(num_pairs, p, p)
        ordered_poles[num_real::2] = pair_poles
        ordered_poles[num_real + 1 :: 2] = np.conj(pair_poles)
        residues[num_real::2] = blocks
        residues[num_real + 1 :: 2] = np.conj(blocks)
    if options.fit_direct_term:
        d = coeffs[-1].reshape(p, p)
    else:
        d = np.zeros((p, p))
    return PoleResidueModel(ordered_poles, residues, d)
