"""The :class:`Macromodel` session facade.

One object drives the paper's whole workflow (Sec. IV): load frequency
data, identify a rational macromodel, characterize its passivity with the
parallel Hamiltonian eigensolver, enforce passivity when needed, and
export the repaired model — as a fluent pipeline::

    from repro.api import Macromodel, RunConfig

    session = (
        Macromodel.from_touchstone("device.s4p")
        .configure(num_threads=8)
        .fit(num_poles=40)
        .check_passivity()
    )
    if not session.is_passive:
        session.enforce().to_touchstone("device_passive.s4p")
    print(session.summary())

Every stage records its result object; :meth:`Macromodel.to_dict` returns
the whole session state as one JSON-serializable payload for machine
consumers.  All cross-cutting knobs come from a single frozen
:class:`~repro.core.config.RunConfig`, overridable per call
(``.check_passivity(num_threads=16)``).
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from dataclasses import asdict, is_dataclass

from repro.core.config import RunConfig
from repro.core.results import SolveResult
from repro.core.solver import solve
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.obs import trace as _obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import get_registry as _obs_process_registry
from repro.passivity.characterization import PassivityReport, characterize_passivity
from repro.passivity.enforcement import EnforcementResult, enforce_passivity
from repro.passivity.hinf import HinfResult, hinf_norm
from repro.passivity.immittance import (
    ImmittancePassivityReport,
    characterize_immittance_passivity,
)
from repro.store import (
    ResultStore,
    array_digest,
    content_key,
    decode_result,
    encode_result,
    result_key,
)
from repro.timedomain.energy import EnergyReport
from repro.timedomain.engine import SimulationResult
from repro.touchstone.reader import TouchstoneData, read_touchstone
from repro.touchstone.writer import write_touchstone
from repro.utils.serialization import to_jsonable
from repro.utils.validation import ensure_sorted_frequencies
from repro.vectfit.vector_fitting import FitResult, vector_fit

__all__ = ["Macromodel"]

ModelLike = Union[PoleResidueModel, SimoRealization]


def _config_for_parameter(
    parameter: str, config: Optional[RunConfig], source: str
) -> RunConfig:
    """Resolve the session config against the data's parameter type.

    S-parameter data defaults to the scattering test, anything else
    (Y/Z/hybrid) to the immittance test.  An explicit config wins, with a
    warning when it contradicts the data.
    """
    data_rep = "scattering" if parameter.upper() == "S" else "immittance"
    if config is None:
        return RunConfig(representation=data_rep)
    if config.representation != data_rep:
        warnings.warn(
            f"{source} holds {parameter}-parameters (expected"
            f" representation {data_rep!r}) but the config requests"
            f" {config.representation!r}; the config wins — pass a"
            " matching representation to silence this",
            UserWarning,
            stacklevel=3,
        )
    return config


class Macromodel:
    """Fluent session over the fit → characterize → enforce → export flow.

    Instances are created through the ``from_*`` constructors; every
    pipeline stage mutates the session in place and returns ``self`` so
    stages chain.  Stage results stay accessible afterwards through the
    ``fit_result`` / ``passivity_report`` / ``enforcement_result`` /
    ``hinf_result`` / ``solve_result`` properties.
    """

    def __init__(
        self,
        *,
        model: Optional[ModelLike] = None,
        data: Optional[TouchstoneData] = None,
        config: Optional[RunConfig] = None,
        source: Optional[str] = None,
    ) -> None:
        self._config = config if config is not None else RunConfig()
        self._model: Optional[ModelLike] = model
        self._data = data
        self._source = source
        self._fit: Optional[FitResult] = None
        self._report: Optional[Union[PassivityReport, ImmittancePassivityReport]] = None
        self._report_model: Optional[ModelLike] = None
        self._report_config: Optional[RunConfig] = None
        self._enforcement: Optional[EnforcementResult] = None
        self._hinf: Optional[HinfResult] = None
        self._solve: Optional[SolveResult] = None
        self._simulation: Optional[SimulationResult] = None
        self._exports: list = []
        self._result_store: Optional[ResultStore] = None
        self._result_store_dir: Optional[str] = None
        self._cache_counters = {"hits": 0, "misses": 0, "writes": 0}
        self._metrics = MetricsRegistry()

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_touchstone(
        cls,
        path: Union[str, Path],
        *,
        num_ports: Optional[int] = None,
        config: Optional[RunConfig] = None,
    ) -> "Macromodel":
        """Start a session from a Touchstone ``.sNp`` file.

        The file's parameter type picks the default representation:
        S-parameter files get the scattering (``sigma = 1``) test, Y/Z
        (and hybrid) files the immittance positive-realness test.  An
        explicit ``config`` wins, with a warning when it contradicts the
        file's parameter type.
        """
        data = read_touchstone(path, num_ports=num_ports)
        config = _config_for_parameter(data.parameter, config, str(path))
        return cls(data=data, config=config, source=str(path))

    @classmethod
    def from_samples(
        cls,
        freqs_rad,
        samples,
        *,
        parameter: str = "S",
        z0: float = 50.0,
        config: Optional[RunConfig] = None,
    ) -> "Macromodel":
        """Start a session from raw frequency samples.

        Parameters
        ----------
        freqs_rad:
            Strictly increasing sample frequencies in rad/s.
        samples:
            Transfer-matrix samples, shape ``(K, p, p)`` complex.
        parameter:
            Parameter-type letter the samples represent (``"S"`` default,
            ``"Y"``/``"Z"`` for immittance data).  Like
            :meth:`from_touchstone`, non-S data defaults the session to
            the immittance test, and exports carry the right option line.
        z0:
            Reference resistance recorded for exports.
        """
        freqs_rad = ensure_sorted_frequencies(freqs_rad, "freqs_rad")
        samples = np.asarray(samples, dtype=complex)
        data = TouchstoneData(
            freqs_hz=freqs_rad / (2.0 * np.pi),
            matrices=samples,
            parameter=parameter,
            z0=float(z0),
        )
        config = _config_for_parameter(parameter, config, "the sample set")
        return cls(data=data, config=config, source="<samples>")

    @classmethod
    def from_pole_residue(
        cls,
        model: ModelLike,
        *,
        config: Optional[RunConfig] = None,
    ) -> "Macromodel":
        """Start a session from an existing macromodel (skips fitting)."""
        if not isinstance(model, (PoleResidueModel, SimoRealization)):
            raise TypeError(
                "expected PoleResidueModel or SimoRealization,"
                f" got {type(model).__name__}"
            )
        return cls(model=model, config=config, source="<model>")

    @classmethod
    def map(
        cls,
        sources,
        *,
        config: Optional[RunConfig] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        backend: str = "process",
        num_poles: int = 30,
        enforce: bool = False,
        margin: float = 0.002,
    ):
        """Run the pipeline over a whole fleet of models.

        The facade spelling of :class:`repro.batch.BatchRunner`:
        ``sources`` may mix Touchstone paths/globs, in-memory models or
        sessions, and :class:`repro.batch.BatchJob` specs; each job runs
        fit → check (→ enforce when ``enforce=True``) on a bounded
        worker pool with a per-job ``timeout``.

        Returns
        -------
        repro.batch.FleetReport
            Per-job structured results plus fleet aggregates.
        """
        from repro.batch import BatchRunner

        runner = BatchRunner(
            config=config,
            workers=workers,
            timeout=timeout,
            backend=backend,
            num_poles=num_poles,
            enforce=enforce,
            margin=margin,
        )
        return runner.run(sources)

    # -- configuration ------------------------------------------------------

    @property
    def config(self) -> RunConfig:
        """The session's run configuration."""
        return self._config

    def configure(
        self, config: Optional[RunConfig] = None, **overrides: Any
    ) -> "Macromodel":
        """Replace or override the session configuration (fluent)."""
        base = config if config is not None else self._config
        self._config = base.merged(**overrides) if overrides else base
        return self

    def _run_config(self, overrides: dict) -> RunConfig:
        return self._config.merged(**overrides) if overrides else self._config

    def _full_axis_config(self, overrides: dict) -> RunConfig:
        """Per-call config for stages whose verdict must cover the whole axis.

        Session-level ``omega_min`` / ``omega_max`` are a characterization
        knob and are dropped here; explicitly passing them as per-call
        overrides is left in place so the underlying function can reject
        them loudly.
        """
        config = self._run_config(overrides)
        if not ("omega_min" in overrides or "omega_max" in overrides):
            config = config.merged(omega_min=0.0, omega_max=None)
        return config

    # -- result-store plumbing ----------------------------------------------

    @property
    def cache_stats(self) -> dict:
        """This session's result-store traffic: hits, misses, writes.

        All zeros while ``config.cache == "off"`` (the default).  A hit
        means the stage skipped its computation entirely — the
        counters are how tests (and ``FleetReport``) verify that a
        repeated characterization never re-ran the eigensweep.
        """
        return dict(self._cache_counters)

    @property
    def metrics(self) -> MetricsRegistry:
        """This session's private metrics registry.

        Every pipeline stage records its wall time into a
        ``stage.<name>`` histogram here (and mirrors it into the
        process registry, :func:`repro.obs.get_registry`), and the
        cache counters are mirrored as ``cache.hits`` /
        ``cache.misses`` / ``cache.writes``.  Read it with
        ``session.metrics.snapshot()``; the same snapshot rides along
        on :class:`~repro.batch.runner.JobResult.metrics` for fleet
        jobs.
        """
        return self._metrics

    def _timed_stage(self, stage: str, compute):
        """Run one stage's compute, recording its latency both locally
        (this session's registry) and process-wide, plus a
        ``stage.<name>`` trace span when a trace context is active."""
        started = time.perf_counter()
        try:
            with _obs_trace.span(f"stage.{stage}"):
                return compute()
        finally:
            elapsed = time.perf_counter() - started
            self._metrics.observe(f"stage.{stage}", elapsed)
            _obs_process_registry().observe(f"stage.{stage}", elapsed)

    def _store_for(self, config: RunConfig) -> Optional[ResultStore]:
        if config.cache == "off":
            return None
        if (
            self._result_store is None
            or self._result_store_dir != config.cache_dir
        ):
            self._result_store = ResultStore.from_config(config)
            self._result_store_dir = config.cache_dir
        return self._result_store

    def _model_digest(self) -> Optional[str]:
        """Content digest of the current model; None when uncacheable."""
        if isinstance(self._model, PoleResidueModel):
            return content_key(self._model.to_dict())
        return None

    def _data_digest(self) -> Optional[str]:
        """Content digest of the loaded sample data."""
        if self._data is None:
            return None
        return array_digest(
            self._data.freqs_hz,
            self._data.matrices,
            extra={
                "parameter": str(self._data.parameter),
                "z0": float(self._data.z0),
            },
        )

    def _cached_stage(
        self,
        *,
        stage: str,
        config: RunConfig,
        digest_fn,
        params: Optional[dict],
        key_config: Optional[RunConfig],
        compute,
    ):
        """Run ``compute`` through the result store when the config opts in.

        ``digest_fn`` is a thunk so the default ``cache="off"`` path
        never pays for hashing the model; it returning ``None`` marks an
        uncacheable input (a structured realization with no canonical
        serialization, non-canonical stage kwargs) and the stage simply
        computes.  ``key_config`` is what enters the cache key (``None``
        for config-independent stages like fitting); ``config`` still
        decides the store location and mode.
        """
        if config.cache == "off":
            return self._timed_stage(stage, compute)
        digest = digest_fn()
        store = self._store_for(config) if digest is not None else None
        if store is None:
            return self._timed_stage(stage, compute)
        try:
            key = result_key(
                stage=stage, input_digest=digest, config=key_config, params=params
            )
        except (TypeError, ValueError):
            # Non-canonical stage parameters: compute without the cache.
            return self._timed_stage(stage, compute)
        payload = store.get(key)
        if payload is not None:
            try:
                result = decode_result(stage, payload)
            except (KeyError, TypeError, ValueError):
                # Semantically unusable payload: fall through to a miss.
                result = None
            if result is not None:
                self._cache_counters["hits"] += 1
                self._metrics.count("cache.hits")
                return result
        self._cache_counters["misses"] += 1
        self._metrics.count("cache.misses")
        result = self._timed_stage(stage, compute)
        if config.cache == "readwrite" and store.put(
            key, encode_result(stage, result), stage=stage
        ):
            self._cache_counters["writes"] += 1
            self._metrics.count("cache.writes")
        return result

    # -- pipeline stages ----------------------------------------------------

    def fit(self, num_poles: int = 30, **fit_kwargs: Any) -> "Macromodel":
        """Identify a rational macromodel from the loaded samples.

        Extra keyword arguments are forwarded to
        :func:`~repro.vectfit.vector_fitting.vector_fit` (e.g.
        ``options=VectorFittingOptions(...)``).
        """
        if self._data is None:
            raise RuntimeError(
                "no sample data loaded; start the session with"
                " from_touchstone()/from_samples(), or use"
                " from_pole_residue() to skip fitting"
            )
        # Fitting ignores the solver RunConfig, so the cache key holds
        # only the data digest and the fit parameters; unknown extra
        # kwargs make the call uncacheable rather than silently aliased.
        cacheable = set(fit_kwargs) <= {"options"}
        params = None
        if cacheable:
            options = fit_kwargs.get("options")
            params = {
                "num_poles": int(num_poles),
                "options": asdict(options)
                if is_dataclass(options) and not isinstance(options, type)
                else None,
            }
        self._fit = self._cached_stage(
            stage="fit",
            config=self._config,
            digest_fn=self._data_digest if cacheable else lambda: None,
            params=params,
            key_config=None,
            compute=lambda: vector_fit(
                self._data.freqs_rad,
                self._data.matrices,
                num_poles=num_poles,
                **fit_kwargs,
            ),
        )
        self._model = self._fit.model
        # Any stage results computed for a previous model are stale now.
        self._report = None
        self._report_model = None
        self._report_config = None
        self._enforcement = None
        self._solve = None
        self._hinf = None
        self._simulation = None
        return self

    def check_passivity(self, **overrides: Any) -> "Macromodel":
        """Run the Hamiltonian passivity characterization (Sec. II).

        Dispatches on ``config.representation``: the scattering
        (``sigma = 1``) test by default, the immittance
        (positive-realness) test when the config says so.
        """
        config = self._run_config(overrides)
        model = self._require_model()
        if config.representation == "immittance":
            stage = "check-immittance"

            def compute():
                return characterize_immittance_passivity(model, config=config)
        else:
            stage = "check"

            def compute():
                return characterize_passivity(model, config=config)

        self._report = self._cached_stage(
            stage=stage,
            config=config,
            digest_fn=self._model_digest,
            params=None,
            key_config=config,
            compute=compute,
        )
        self._report_model = model
        self._report_config = config
        return self

    def enforce(
        self,
        *,
        margin: float = 0.002,
        max_iterations: int = 25,
        d_max_sigma: float = 0.999,
        **overrides: Any,
    ) -> "Macromodel":
        """Perturb residues until the Hamiltonian test certifies passivity.

        Replaces the session model with the enforced one; the final
        characterization becomes the session's passivity report.  A
        scattering report from an immediately preceding
        :meth:`check_passivity` on the same model seeds the loop's first
        iteration, so the recommended ``check → enforce`` pipeline does
        not pay for the initial eigensweep twice.  Like :meth:`hinf`,
        session-level ``omega_min`` / ``omega_max`` are dropped (the
        enforcement verdict must certify the whole axis); passing them as
        per-call overrides is an error.
        """
        model = self._require_model()
        if isinstance(model, SimoRealization):
            raise TypeError(
                "enforcement perturbs pole/residue models; this session"
                " holds a structured realization — start from a"
                " PoleResidueModel (e.g. via fit())"
            )
        config = self._full_axis_config(overrides)
        # Seed iteration 0 with the prior check only when that check was a
        # full-axis scattering sweep of the very model being enforced.
        initial_report = None
        if (
            self._report_model is model
            and isinstance(self._report, PassivityReport)
            and self._report_config is not None
            and not self._report_config.is_band_limited
        ):
            initial_report = self._report
        # The cache key cannot see the seed report, so only cache runs
        # whose outcome is independent of it: unseeded runs, and runs
        # seeded by a check under this exact config (where iteration 0
        # would recompute the identical report anyway).  A seed from a
        # *different* solver config could steer a different trajectory —
        # those runs compute uncached rather than alias.
        seed_is_neutral = initial_report is None or self._report_config == config
        self._enforcement = self._cached_stage(
            stage="enforce",
            config=config,
            digest_fn=self._model_digest if seed_is_neutral else (lambda: None),
            params={
                "margin": float(margin),
                "max_iterations": int(max_iterations),
                "d_max_sigma": float(d_max_sigma),
            },
            key_config=config,
            compute=lambda: enforce_passivity(
                model,
                margin=margin,
                max_iterations=max_iterations,
                d_max_sigma=d_max_sigma,
                config=config,
                initial_report=initial_report,
            ),
        )
        self._model = self._enforcement.model
        if self._enforcement.reports:
            self._report = self._enforcement.reports[-1]
            self._report_model = self._model
            self._report_config = config
        # Sweep/norm/transient results of the pre-enforcement model no
        # longer describe the session model; drop them so to_dict() stays
        # self-consistent (re-run find_crossings()/hinf()/simulate()).
        self._solve = None
        self._hinf = None
        self._simulation = None
        return self

    def hinf(self, *, rtol: float = 1e-6, **overrides: Any) -> "Macromodel":
        """Compute the H-infinity norm by Hamiltonian gamma-bisection.

        The session's ``omega_min`` / ``omega_max`` are a characterization
        knob and do not apply here (the norm is a supremum over the whole
        axis; the sweep band is chosen per gamma internally), so this
        stage drops them rather than failing a pipeline that band-limits
        its :meth:`check_passivity`.  Passing them as per-call overrides
        is still an error.
        """
        config = self._full_axis_config(overrides)
        model = self._require_model()
        self._hinf = self._cached_stage(
            stage="hinf",
            config=config,
            digest_fn=self._model_digest,
            params={"rtol": float(rtol)},
            key_config=config,
            compute=lambda: hinf_norm(model, rtol=rtol, config=config),
        )
        return self

    def find_crossings(self, **overrides: Any) -> "Macromodel":
        """Run the raw eigensolver sweep (no band classification)."""
        config = self._run_config(overrides)
        model = self._require_model()
        self._solve = self._cached_stage(
            stage="solve",
            config=config,
            digest_fn=self._model_digest,
            params=None,
            key_config=config,
            compute=lambda: solve(model, config),
        )
        return self

    def simulate(
        self,
        stimulus: Any = "prbs",
        *,
        dt: Optional[float] = None,
        num_steps: int = 4096,
        integrator: str = "recursive",
        discretization: str = "tustin",
        termination: Any = None,
        tol: float = 1e-8,
        keep_waveforms: bool = False,
        **overrides: Any,
    ) -> "Macromodel":
        """Transient-simulate the session model and meter its port energy.

        The time-domain acceptance check of the frequency-domain
        verdict: a non-passive model driven near its violation peak
        returns more energy than it receives
        (``energy_report.energy_gain > 1``), an enforced model never
        does.  See :func:`repro.timedomain.simulate` for the engine
        parameters; on top of those this stage accepts the stimulus
        shorthand ``"worst-tone"`` — a tone aligned with the top
        singular vector at the worst violation peak of the session's
        passivity report (requires a prior :meth:`check_passivity` that
        found violations).

        Results are kept compact by default (``keep_waveforms=False``),
        which also makes this stage cacheable through the result store;
        keeping the waveform arrays marks the run uncacheable.
        """
        from repro.timedomain import engine as _engine
        from repro.timedomain.stimulus import worst_tone
        from repro.timedomain.terminations import Termination

        config = self._run_config(overrides)
        model = self._require_model()
        if stimulus == "worst-tone":
            report = self._report
            if report is None or not getattr(report, "bands", ()):
                raise RuntimeError(
                    "stimulus 'worst-tone' needs a prior check_passivity()"
                    " whose report found violation bands"
                )
            band = max(report.bands, key=lambda b: b.severity)
            stimulus = worst_tone(model, band.peak_freq)
        stim = _engine._as_stimulus(stimulus)
        if termination is None:
            term = Termination.matched()
        elif isinstance(termination, dict):
            term = Termination.from_dict(termination)
        else:
            term = termination
        if isinstance(model, SimoRealization) and integrator == "recursive":
            # Structured realizations have no pole/residue form; fall
            # through to the dense integrator rather than failing.
            integrator = "statespace"
        if dt is None:
            dt = _engine.default_timestep(
                model, freq=stim.freq if stim.kind == "tone" else None
            )
        params = {
            "stimulus": stim.to_dict(),
            "termination": term.to_dict(),
            "dt": float(dt),
            "num_steps": int(num_steps),
            "integrator": str(integrator),
            # The recursive path never reads the discretization rule, so
            # normalize it out of the key — otherwise identical results
            # would split across distinct store entries.
            "discretization": (
                str(discretization) if integrator == "statespace" else None
            ),
            "tol": float(tol),
        }
        self._simulation = self._cached_stage(
            stage="simulate",
            config=config,
            # Waveform-carrying results are not stored (the payloads
            # would dwarf every other stage); such runs just compute.
            digest_fn=self._model_digest if not keep_waveforms else lambda: None,
            params=params,
            key_config=None,
            compute=lambda: _engine.simulate(
                model,
                stim,
                dt=dt,
                num_steps=num_steps,
                integrator=integrator,
                discretization=discretization,
                termination=term,
                tol=tol,
                keep_waveforms=keep_waveforms,
            ),
        )
        return self

    def to_touchstone(
        self,
        path: Union[str, Path],
        *,
        freqs_hz=None,
        num_points: int = 400,
        fmt: str = "RI",
        z0: Optional[float] = None,
        parameter: Optional[str] = None,
        comment: Optional[str] = None,
    ) -> "Macromodel":
        """Export the current model's frequency response to a ``.sNp`` file.

        Parameters
        ----------
        path:
            Output file path.
        freqs_hz:
            Export grid in Hz; defaults to the input grid when the session
            started from samples, else to a linear grid of ``num_points``
            spanning the characterized (or pole-derived) band.
        parameter:
            Parameter-type letter for the Touchstone option line; defaults
            to the input file's type (so a Y-parameter session exports
            Y-parameters), or ``"S"`` for model-only sessions.
        """
        model = self._require_model()
        if freqs_hz is None:
            if self._data is not None:
                freqs_hz = self._data.freqs_hz
            else:
                freqs_hz = self._default_grid_hz(model, num_points)
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        response = model.frequency_response(2.0 * np.pi * freqs_hz)
        if z0 is None:
            z0 = self._data.z0 if self._data is not None else 50.0
        if parameter is None:
            parameter = self._data.parameter if self._data is not None else "S"
        if comment is None:
            comment = f"macromodel exported by repro (source: {self._source or 'n/a'})"
        write_touchstone(
            path, freqs_hz, response, parameter=parameter, fmt=fmt, z0=z0,
            comment=comment,
        )
        self._exports.append(str(path))
        return self

    def _default_grid_hz(self, model: ModelLike, num_points: int) -> np.ndarray:
        if self._report is not None and self._report.solve is not None:
            top_rad = self._report.solve.band[1]
        elif self._solve is not None:
            top_rad = self._solve.band[1]
        else:
            poles = (
                model.poles if isinstance(model, PoleResidueModel) else model.poles()
            )
            top_rad = 1.5 * float(np.abs(poles).max()) if np.size(poles) else 1.0
        top_hz = max(top_rad, 1e-9) / (2.0 * np.pi)
        return np.linspace(top_hz / num_points, top_hz, num_points)

    # -- accessors ----------------------------------------------------------

    def _require_model(self) -> ModelLike:
        if self._model is None:
            raise RuntimeError(
                "no model available yet; call fit() first (sessions started"
                " from from_pole_residue() already have one)"
            )
        return self._model

    @property
    def model(self) -> Optional[ModelLike]:
        """The current macromodel (fitted, then possibly enforced)."""
        return self._model

    @property
    def data(self) -> Optional[TouchstoneData]:
        """The loaded sample data, when the session started from data."""
        return self._data

    @property
    def fit_result(self) -> Optional[FitResult]:
        """Vector Fitting outcome of the last :meth:`fit`."""
        return self._fit

    @property
    def passivity_report(
        self,
    ) -> Optional[Union[PassivityReport, ImmittancePassivityReport]]:
        """Most recent passivity characterization.

        A :class:`PassivityReport` for the scattering test, an
        :class:`ImmittancePassivityReport` when the session config asked
        for the immittance representation.
        """
        return self._report

    # Short alias used throughout the docs.
    report = passivity_report

    @property
    def enforcement_result(self) -> Optional[EnforcementResult]:
        """Outcome of the last :meth:`enforce`."""
        return self._enforcement

    @property
    def hinf_result(self) -> Optional[HinfResult]:
        """Outcome of the last :meth:`hinf`."""
        return self._hinf

    @property
    def solve_result(self) -> Optional[SolveResult]:
        """Outcome of the last :meth:`find_crossings`."""
        return self._solve

    @property
    def simulation_result(self) -> Optional[SimulationResult]:
        """Outcome of the last :meth:`simulate`."""
        return self._simulation

    @property
    def energy_report(self) -> Optional[EnergyReport]:
        """Energy witness of the last :meth:`simulate` (None before)."""
        if self._simulation is None:
            return None
        return self._simulation.energy

    @property
    def is_passive(self) -> Optional[bool]:
        """Passivity verdict; ``None`` before any characterization."""
        if self._report is None:
            return None
        return self._report.passive

    # -- reporting ----------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable summary of the session state."""
        lines = [f"Macromodel session (source: {self._source or 'n/a'})"]
        lines.append(
            f"  config: threads={self._config.num_threads}"
            f" strategy={self._config.strategy!r}"
            f" representation={self._config.representation!r}"
        )
        if self._data is not None:
            lines.append(
                f"  data: {self._data.num_ports} ports,"
                f" {self._data.freqs_hz.size} samples,"
                f" band {self._data.freqs_hz[0]:.6g}..{self._data.freqs_hz[-1]:.6g} Hz"
            )
        if self._fit is not None:
            lines.append(
                f"  fit: {self._fit.model.num_poles} poles,"
                f" rms error {self._fit.rms_error:.3e},"
                f" max error {self._fit.max_error:.3e}"
            )
        if self._model is not None:
            lines.append(f"  model: {self._model!r}")
        if self._enforcement is not None:
            verdict = "passive" if self._enforcement.passive else "NOT passive"
            lines.append(
                f"  enforcement: {verdict} after"
                f" {self._enforcement.iterations} iteration(s),"
                f" perturbation norm {self._enforcement.perturbation_norm:.3e}"
            )
        if self._report is not None:
            lines.append(f"  passivity: {self._report.summary()}")
        if self._hinf is not None:
            lines.append(
                f"  hinf: {self._hinf.norm:.8f}"
                f" (bracket [{self._hinf.lower:.8f}, {self._hinf.upper:.8f}])"
            )
        if self._solve is not None:
            lines.append(f"  sweep: {self._solve.summary()}")
        if self._simulation is not None:
            lines.append(f"  transient: {self._simulation.energy.summary()}")
        for path in self._exports:
            lines.append(f"  exported: {path}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the whole session."""
        payload: dict = {
            "source": self._source,
            "config": self._config.to_dict(),
            "is_passive": self.is_passive,
            "exports": list(self._exports),
        }
        if self._model is not None and isinstance(self._model, PoleResidueModel):
            payload["model"] = self._model.to_dict()
        if self._fit is not None:
            payload["fit"] = self._fit.to_dict(include_model=False)
        if self._report is not None:
            payload["passivity"] = self._report.to_dict()
        if self._enforcement is not None:
            payload["enforcement"] = self._enforcement.to_dict(include_model=False)
        if self._hinf is not None:
            payload["hinf"] = self._hinf.to_dict()
        if self._solve is not None:
            payload["solve"] = self._solve.to_dict(include_shifts=False)
        if self._simulation is not None:
            payload["simulation"] = self._simulation.to_dict()
        if any(self._cache_counters.values()):
            payload["cache"] = self.cache_stats
        return to_jsonable(payload)

    def __repr__(self) -> str:
        stages = []
        if self._fit is not None:
            stages.append("fit")
        if self._report is not None:
            stages.append("checked")
        if self._enforcement is not None:
            stages.append("enforced")
        state = "+".join(stages) if stages else "new"
        return f"Macromodel(source={self._source!r}, state={state})"
