"""High-level session API: the :class:`Macromodel` facade.

This package is the recommended entry point of the library::

    from repro.api import Macromodel, RunConfig

    report = (
        Macromodel.from_touchstone("device.s4p")
        .configure(num_threads=8)
        .fit(num_poles=40)
        .check_passivity()
        .passivity_report
    )

It re-exports the building blocks the facade is made of: the single
:class:`~repro.core.config.RunConfig` carrying every cross-cutting knob,
and the pluggable strategy registry
(:func:`~repro.core.registry.register_strategy` /
:func:`~repro.core.registry.resolve_strategy`) through which new sweep
backends plug into the solver without touching the dispatcher.
"""

from repro.api.session import Macromodel
from repro.core.config import ConfigError, RunConfig
from repro.core.options import SolverOptions
from repro.core.registry import (
    BACKENDS,
    StrategySpec,
    available_strategies,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)

__all__ = [
    "BACKENDS",
    "ConfigError",
    "Macromodel",
    "RunConfig",
    "SolverOptions",
    "StrategySpec",
    "available_strategies",
    "register_strategy",
    "resolve_strategy",
    "unregister_strategy",
]
