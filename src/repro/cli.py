"""Command-line interface: passivity tools for Touchstone files.

Usage (after ``pip install -e .``)::

    repro info       device.s4p
    repro check      device.s4p --poles 40 --threads 8
    repro enforce    device.s4p --poles 40 --out passive.s4p
    repro hinf       device.s4p --poles 40
    repro simulate   device.s4p --stimulus prbs --steps 8192 --json
    repro simulate   --synth --seed 7 --stimulus worst-tone --enforce
    repro batch      'devices/*.s4p' --workers 4 --timeout 120
    repro batch      --synth 10 --seed 7 --backend process --json
    repro cache      stats --json
    repro serve      --port 8080 --workers 4 --cache readwrite
    repro worker     --backend process --timeout 120
    repro jobs       list --state failed --json
    repro strategies
    repro --version

(``python -m repro ...`` works identically.)  ``check`` fits a rational
macromodel to the file and runs the Hamiltonian passivity
characterization; ``enforce`` additionally repairs the model and writes
the resampled passive response; ``hinf`` computes the H-infinity norm by
Hamiltonian bisection; ``simulate`` transient-simulates the model
against a stimulus/termination scenario and reports the port-energy
passivity witness (gain > 1 exposes a non-passive model in the time
domain); ``batch`` runs the fit → check (→ enforce → simulate)
pipeline over a whole fleet of models on a bounded worker pool;
``cache`` inspects and manages the content-addressed result store;
``serve`` runs the persistent HTTP job service (see
:mod:`repro.service`); ``worker`` attaches one queue-draining worker
process to the service's durable queue (run N of them to scale out;
SIGTERM drains gracefully); ``jobs`` administers that queue (list /
show / retry / purge); ``info`` summarizes the file; ``strategies``
lists the registered scheduling strategies.

The CLI is a thin shell over the :class:`~repro.api.Macromodel` facade.
The fitting commands (``check`` / ``enforce`` / ``hinf``) accept
``--threads`` / ``--strategy`` / ``--backend`` / ``--representation``
plus the result-store axis (``--cache`` / ``--cache-dir``), honour the
``REPRO_*`` environment variables through
:meth:`~repro.core.config.RunConfig.from_env`, and support ``--json``
to print the session's machine-readable
:meth:`~repro.api.Macromodel.to_dict` payload; ``info`` and
``strategies`` are plain inspection commands with no solver knobs.
Every machine-readable mode (``--json``, ``serve --print-config``)
keeps stdout a single parseable JSON document — progress lines move to
stderr.  Configuration layers lowest-to-highest: the file's parameter
type (S → scattering, Y/Z → immittance), then ``REPRO_*``, then typed
flags.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.api import Macromodel, available_strategies
from repro.core.config import CACHE_MODES, RunConfig
from repro.core.registry import AUTO_DESCRIPTION, BACKENDS, get_strategy
from repro.hamiltonian.operator import REPRESENTATIONS

__all__ = ["main", "build_parser", "version_string"]


def version_string() -> str:
    """The installed package version (metadata first, source fallback)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


class _TrackedStore(argparse.Action):
    """Store action that records which flags the user actually passed.

    Parser defaults keep their documented values (so ``args.threads`` is
    1 when omitted), while ``args._explicit`` lets the config layer give
    explicitly-typed flags precedence over ``REPRO_*`` environment
    variables — including ``--threads 1`` / ``--strategy auto``.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        if not hasattr(namespace, "_explicit"):
            namespace._explicit = set()
        namespace._explicit.add(self.dest)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hamiltonian passivity tools for interconnect macromodels",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {version_string()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a Touchstone file")
    info.add_argument("path", help="input .sNp file")

    def add_fit_args(p):
        p.add_argument("path", help="input .sNp file")
        p.add_argument("--poles", type=int, default=30, help="model order")
        p.add_argument(
            "--threads",
            type=int,
            default=1,
            action=_TrackedStore,
            help="solver threads",
        )
        p.add_argument(
            "--strategy",
            default="auto",
            choices=available_strategies(),
            action=_TrackedStore,
            help="scheduling strategy (default: auto)",
        )
        p.add_argument(
            "--backend",
            default="auto",
            choices=BACKENDS,
            action=_TrackedStore,
            help="execution backend: serial, thread, or process"
            " (default: auto — follow the strategy)",
        )
        p.add_argument(
            "--representation",
            default="scattering",
            choices=REPRESENTATIONS,
            action=_TrackedStore,
            help=(
                "transfer representation (default: from the file's"
                " parameter type — S: scattering, Y/Z: immittance)"
            ),
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="print the machine-readable session payload",
        )
        add_cache_args(p)

    def add_cache_args(p):
        p.add_argument(
            "--cache",
            default="off",
            choices=CACHE_MODES,
            action=_TrackedStore,
            help="result-store mode (default: off; see also REPRO_CACHE)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            action=_TrackedStore,
            help="result-store directory (default: REPRO_CACHE_DIR or"
            " ~/.cache/repro)",
        )

    def add_queue_args(p):
        p.add_argument(
            "--queue",
            default=None,
            action=_TrackedStore,
            help="queue database file (default: REPRO_QUEUE_PATH or"
            " queue.sqlite3 next to the result store)",
        )
        p.add_argument(
            "--lease",
            type=float,
            default=None,
            action=_TrackedStore,
            metavar="SECONDS",
            help="job lease; a worker silent this long is presumed dead"
            " (default: REPRO_QUEUE_LEASE or 60)",
        )
        p.add_argument(
            "--heartbeat",
            type=float,
            default=None,
            action=_TrackedStore,
            metavar="SECONDS",
            help="lease-renewal interval of a busy worker (default:"
            " REPRO_QUEUE_HEARTBEAT or 15; must stay below the lease)",
        )
        p.add_argument(
            "--poll",
            type=float,
            default=None,
            action=_TrackedStore,
            metavar="SECONDS",
            help="idle queue poll interval (default: REPRO_QUEUE_POLL or 0.2)",
        )
        p.add_argument(
            "--max-attempts",
            type=int,
            default=None,
            action=_TrackedStore,
            help="claim attempts before a job is marked failed (default:"
            " REPRO_QUEUE_MAX_ATTEMPTS or 3)",
        )

    check = sub.add_parser("check", help="fit a macromodel and test passivity")
    add_fit_args(check)
    check.add_argument(
        "--plot", action="store_true", help="ASCII plot of the sigma sweep"
    )

    enforce = sub.add_parser("enforce", help="fit, enforce passivity, export")
    add_fit_args(enforce)
    enforce.add_argument("--out", required=True, help="output .sNp path")
    enforce.add_argument(
        "--margin", type=float, default=0.002, help="enforcement margin below 1"
    )

    hinf = sub.add_parser("hinf", help="H-infinity norm via Hamiltonian bisection")
    add_fit_args(hinf)
    hinf.add_argument("--rtol", type=float, default=1e-6, help="bracket tolerance")

    from repro.timedomain import DISCRETIZATIONS, INTEGRATORS, STIMULUS_KINDS

    simulate = sub.add_parser(
        "simulate",
        help="transient-simulate a macromodel and report its energy balance",
    )
    simulate.add_argument(
        "path", nargs="?", help="input .sNp file (omit with --synth)"
    )
    simulate.add_argument(
        "--poles", type=int, default=30, help="fit model order (file inputs)"
    )
    simulate.add_argument(
        "--synth",
        action="store_true",
        help="simulate a seeded synthetic macromodel instead of a file",
    )
    simulate.add_argument(
        "--synth-order", type=int, default=10, help="synthetic poles per column"
    )
    simulate.add_argument(
        "--synth-ports", type=int, default=2, help="synthetic port count"
    )
    simulate.add_argument(
        "--seed", type=int, default=0, help="synthetic model seed"
    )
    simulate.add_argument(
        "--sigma-target",
        type=float,
        default=1.05,
        help="peak singular value of the synthetic model (>1 = violating)",
    )
    simulate.add_argument(
        "--stimulus",
        default="prbs",
        choices=STIMULUS_KINDS + ("worst-tone",),
        help="excitation ('worst-tone' drives the worst violation peak;"
        " implies a passivity check first)",
    )
    simulate.add_argument(
        "--steps", type=int, default=4096, help="simulation window in samples"
    )
    simulate.add_argument(
        "--dt",
        type=float,
        default=None,
        help="timestep in seconds (default: resolve the fastest pole)",
    )
    simulate.add_argument(
        "--amplitude", type=float, default=1.0, help="stimulus amplitude"
    )
    simulate.add_argument(
        "--bit-steps", type=int, default=8, help="PRBS samples per bit"
    )
    simulate.add_argument(
        "--stim-seed", type=int, default=0, help="PRBS pattern seed"
    )
    simulate.add_argument(
        "--tone-freq",
        type=float,
        default=None,
        help="tone frequency in rad/s (required for --stimulus tone)",
    )
    simulate.add_argument(
        "--integrator",
        default="recursive",
        choices=INTEGRATORS,
        help="transient integrator (default: recursive convolution)",
    )
    simulate.add_argument(
        "--discretization",
        default="tustin",
        choices=DISCRETIZATIONS,
        help="state-space discretization rule",
    )
    simulate.add_argument(
        "--resistance",
        type=float,
        default=None,
        help="terminate every port with this resistance in ohm"
        " (default: matched, no reflections)",
    )
    simulate.add_argument(
        "--tol",
        type=float,
        default=1e-8,
        help="energy-gain slack of the passivity verdict",
    )
    simulate.add_argument(
        "--enforce",
        action="store_true",
        help="enforce passivity first and simulate the repaired model",
    )
    simulate.add_argument(
        "--threads",
        type=int,
        default=1,
        action=_TrackedStore,
        help="solver threads (for the check/enforce stages)",
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable session payload",
    )
    add_cache_args(simulate)

    batch = sub.add_parser(
        "batch", help="run fit+check (+enforce) over a fleet of models"
    )
    batch.add_argument(
        "inputs",
        nargs="*",
        help="Touchstone files or glob patterns (quote globs to keep the"
        " shell from expanding them)",
    )
    batch.add_argument(
        "--synth",
        type=int,
        default=0,
        metavar="N",
        help="append N seeded synthetic models to the fleet",
    )
    batch.add_argument(
        "--synth-order", type=int, default=10, help="synthetic poles per column"
    )
    batch.add_argument(
        "--synth-ports", type=int, default=2, help="synthetic port count"
    )
    batch.add_argument(
        "--seed", type=int, default=0, help="base seed of the synthetic fleet"
    )
    batch.add_argument(
        "--sigma-target",
        type=float,
        default=1.05,
        help="peak singular value targeted by the synthetic models",
    )
    batch.add_argument("--poles", type=int, default=30, help="fit model order")
    batch.add_argument(
        "--workers", type=int, default=None, help="max concurrent jobs"
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job budget in seconds"
    )
    batch.add_argument(
        "--backend",
        default="process",
        choices=("process", "thread", "serial"),
        help="fleet execution backend (default: process)",
    )
    batch.add_argument(
        "--enforce",
        action="store_true",
        help="also enforce passivity on violating models",
    )
    batch.add_argument(
        "--simulate",
        action="store_true",
        help="also run the transient energy witness on each final model",
    )
    batch.add_argument(
        "--margin", type=float, default=0.002, help="enforcement margin"
    )
    batch.add_argument(
        "--out", default=None, help="write the fleet report JSON to this path"
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable fleet report",
    )
    add_cache_args(batch)

    cache = sub.add_parser(
        "cache", help="inspect and manage the content-addressed result store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "show entry count, size, and traffic counters"),
        ("clear", "delete every cached entry"),
        ("prune", "evict least-recently-used entries down to the size cap"),
    ):
        cp = cache_sub.add_parser(name, help=help_text)
        cp.add_argument(
            "--cache-dir",
            default=None,
            help="store directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        cp.add_argument(
            "--json",
            action="store_true",
            help="print the machine-readable summary",
        )
        if name == "prune":
            cp.add_argument(
                "--max-bytes",
                type=int,
                default=None,
                help="prune down to this many bytes (default: the store cap,"
                " REPRO_CACHE_MAX_BYTES)",
            )

    serve = sub.add_parser(
        "serve", help="run the persistent HTTP macromodel job service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="embedded queue workers (0 = pure front-end; drain the"
        " queue with external 'repro worker' processes)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-job budget in seconds"
    )
    serve.add_argument(
        "--backend",
        default="process",
        choices=("process", "thread", "serial"),
        help="job execution backend (default: process)",
    )
    serve.add_argument(
        "--poles", type=int, default=30, help="default fit model order"
    )
    serve.add_argument(
        "--margin", type=float, default=0.002, help="default enforcement margin"
    )
    serve.add_argument(
        "--cache",
        default="readwrite",
        choices=CACHE_MODES,
        action=_TrackedStore,
        help="result-store mode (default: readwrite — the service exists"
        " to absorb repeated traffic)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        action=_TrackedStore,
        help="result-store directory (default: REPRO_CACHE_DIR or"
        " ~/.cache/repro)",
    )
    add_queue_args(serve)
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        action=_TrackedStore,
        help="per-client job submissions per second (0 = unlimited;"
        " default: REPRO_QUEUE_RATE or off)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=None,
        action=_TrackedStore,
        help="per-client submission burst size (token bucket)",
    )
    serve.add_argument(
        "--print-config",
        action="store_true",
        help="print the resolved service configuration as JSON and exit"
        " (pure JSON on stdout; nothing is served)",
    )

    worker = sub.add_parser(
        "worker",
        help="drain the service's durable job queue (run N for a fleet)",
    )
    add_queue_args(worker)
    worker.add_argument(
        "--cache-dir",
        default=None,
        action=_TrackedStore,
        help="result-store directory the default queue path resolves"
        " against (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    worker.add_argument(
        "--backend",
        default="process",
        choices=("process", "thread", "serial"),
        help="job execution backend (default: process)",
    )
    worker.add_argument(
        "--timeout", type=float, default=None, help="per-job budget in seconds"
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: host-pid-random)",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after completing this many jobs",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit once the queue has been empty this long"
        " (default: wait forever)",
    )

    jobs = sub.add_parser(
        "jobs", help="administer the durable job queue (list/show/retry/purge)"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def add_jobs_common(p):
        add_queue_args(p)
        p.add_argument(
            "--cache-dir",
            default=None,
            action=_TrackedStore,
            help="result-store directory the default queue path resolves"
            " against (default: REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="print the machine-readable payload",
        )

    jobs_list = jobs_sub.add_parser("list", help="list queued/finished jobs")
    add_jobs_common(jobs_list)
    jobs_list.add_argument(
        "--state",
        default=None,
        choices=("queued", "running", "done", "error", "timeout", "failed"),
        help="only jobs in this state",
    )
    jobs_list.add_argument("--task", default=None, help="only jobs of this task")
    jobs_list.add_argument(
        "--limit", type=int, default=50, help="newest N jobs (default: 50)"
    )

    jobs_show = jobs_sub.add_parser("show", help="show one job in full")
    add_jobs_common(jobs_show)
    jobs_show.add_argument("id", help="job id")

    jobs_retry = jobs_sub.add_parser(
        "retry", help="requeue a finished/failed job"
    )
    add_jobs_common(jobs_retry)
    jobs_retry.add_argument("id", help="job id")

    jobs_purge = jobs_sub.add_parser(
        "purge", help="delete all jobs in one terminal state"
    )
    add_jobs_common(jobs_purge)
    jobs_purge.add_argument(
        "--state",
        required=True,
        choices=("done", "error", "timeout", "failed"),
        help="terminal state to purge",
    )

    trace = sub.add_parser(
        "trace",
        help="render one job's distributed trace as an ASCII waterfall",
    )
    add_queue_args(trace)
    trace.add_argument("id", help="job id")
    trace.add_argument(
        "--cache-dir",
        default=None,
        action=_TrackedStore,
        help="result-store directory the default queue path resolves"
        " against (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="print the span tree as machine-readable JSON",
    )
    trace.add_argument(
        "--width",
        type=int,
        default=40,
        help="waterfall bar width in characters (default: 40)",
    )

    faults = sub.add_parser(
        "faults", help="inspect the fault-injection framework"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_list = faults_sub.add_parser(
        "list", help="enumerate registered injection points"
    )
    faults_list.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable registry",
    )

    sub.add_parser("strategies", help="list registered scheduling strategies")

    bench = sub.add_parser(
        "bench",
        help="time (and optionally profile) the named pipeline bench stages",
    )
    bench.add_argument(
        "stages",
        nargs="*",
        metavar="STAGE",
        help="stages to run (default: eigensweep vector_fit enforcement;"
        " see repro.obs.benchstage)",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="model-order scale factor of the seeded reference model",
    )
    bench.add_argument(
        "--threads", type=int, default=2, help="solver threads per stage"
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="run each stage under cProfile and attach its top-N hot"
        " functions to the JSON output",
    )
    bench.add_argument(
        "--profile-sort",
        default="cumtime",
        choices=("cumtime", "tottime", "ncalls"),
        help="hot-function ranking order (default: cumtime)",
    )
    bench.add_argument(
        "--profile-top",
        type=int,
        default=20,
        help="number of hot functions reported per stage (default: 20)",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="also write the JSON document to this path",
    )

    profile = sub.add_parser(
        "profile",
        help="run any repro subcommand under cProfile (ad-hoc profiling)",
    )
    profile.add_argument(
        "--sort",
        default="cumtime",
        choices=("cumtime", "tottime", "ncalls"),
        help="hot-function ranking order (default: cumtime)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=20,
        help="number of hot functions reported (default: 20)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="print the profile report as JSON on stdout (after the"
        " wrapped command's own output)",
    )
    profile.add_argument(
        "--output",
        default=None,
        help="write the JSON profile report to this path",
    )
    profile.add_argument(
        "argv",
        nargs=argparse.REMAINDER,
        metavar="SUBCOMMAND...",
        help="the repro subcommand to profile, e.g."
        " `repro profile check dev.s2p`",
    )
    return parser


def _session_config(args, base: Optional[RunConfig] = None) -> RunConfig:
    """Layer the config: ``base`` < ``REPRO_*`` environment < typed flags.

    Flags the user did not type do not override the environment, so
    ``REPRO_NUM_THREADS=8 repro check dev.s2p`` uses 8 threads while
    ``repro check dev.s2p --threads 1`` always forces a serial run.
    """
    config = RunConfig.from_env(base=base)
    explicit = getattr(args, "_explicit", set())
    overrides = {}
    if "threads" in explicit:
        overrides["num_threads"] = args.threads
    if "strategy" in explicit:
        overrides["strategy"] = args.strategy
    if "backend" in explicit:
        overrides["backend"] = args.backend
    if "representation" in explicit:
        overrides["representation"] = args.representation
    if "cache" in explicit:
        overrides["cache"] = args.cache
    if "cache_dir" in explicit:
        overrides["cache_dir"] = args.cache_dir
    return config.merged(**overrides) if overrides else config


def _fit_session(args, *, scattering_only: bool = False) -> Macromodel:
    # Opening the file first lets its parameter type (S vs Y/Z) choose
    # the default representation; env vars and flags layer on top.
    session = Macromodel.from_touchstone(args.path)
    session.configure(_session_config(args, base=session.config))
    if scattering_only and session.config.representation != "scattering":
        # Fail before paying for the fit.
        raise ValueError(
            f"the {args.command} command works on the scattering-domain"
            f" sigma but this session resolved to"
            f" {session.config.representation!r} (the file holds"
            f" {session.data.parameter}-parameters); pass"
            " --representation scattering to override"
        )
    # Also resolve the strategy/thread combination before the fit, so
    # e.g. --strategy bisection --threads 4 fails in milliseconds.
    session.config.resolved_strategy()
    session.fit(num_poles=args.poles)
    fit = session.fit_result
    _say(
        args,
        f"fit: {args.poles} poles, rms error {fit.rms_error:.3e},"
        f" max error {fit.max_error:.3e}",
    )
    return session


def _say(args, message: str) -> None:
    """Human-readable progress line.

    Under ``--json`` these go to stderr so stdout stays a single
    parseable JSON document; otherwise they go to stdout as usual.
    """
    stream = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(message, file=stream)


def _maybe_json(args, session: Macromodel) -> None:
    if getattr(args, "json", False):
        print(json.dumps(session.to_dict(), indent=2, sort_keys=True))


def _cmd_info(args) -> int:
    session = Macromodel.from_touchstone(args.path)
    data = session.data
    sv = np.linalg.svd(data.matrices, compute_uv=False)
    print(f"file:       {args.path}")
    print(f"ports:      {data.num_ports}")
    print(f"parameter:  {data.parameter} (z0 = {data.z0:g} ohm)")
    print(
        f"band:       {data.freqs_hz[0]:.6g} .. {data.freqs_hz[-1]:.6g} Hz"
        f" ({data.freqs_hz.size} points)"
    )
    print(f"max sigma:  {sv.max():.6f} (sampled; > 1 suggests non-passive data)")
    return 0


def _cmd_check(args) -> int:
    session = _fit_session(args).check_passivity()
    report = session.passivity_report
    _say(args, report.summary())
    solve = report.solve
    _say(
        args,
        f"eigensolver: {solve.shifts_processed} shifts,"
        f" {solve.work['operator_applies']} operator applies,"
        f" {solve.elapsed:.3f}s",
    )
    if getattr(args, "plot", False):
        # The ASCII plot draws sigma against the unit threshold — a
        # scattering-domain picture that would contradict an immittance
        # verdict, so it is skipped for immittance sessions.
        if session.config.representation != "scattering":
            _say(args, "(--plot shows the scattering sigma sweep; skipped"
                       " for the immittance test)")
        else:
            from repro.reporting.ascii_plot import sigma_plot

            top = max(solve.band[1], float(session.data.freqs_rad[-1]))
            grid = np.linspace(float(session.data.freqs_rad[0]), top, 300)
            _say(args, "")
            _say(
                args,
                sigma_plot(
                    session.model,
                    grid,
                    mark_bands=[(b.lo, b.hi) for b in report.bands],
                ),
            )
    _maybe_json(args, session)
    return 0 if report.passive else 2


def _cmd_enforce(args) -> int:
    session = _fit_session(args, scattering_only=True).enforce(margin=args.margin)
    result = session.enforcement_result
    if not result.passive:
        _say(args, "enforcement FAILED to reach passivity within the iteration cap")
        _maybe_json(args, session)
        return 3
    _say(
        args,
        f"enforced in {result.iterations} iteration(s),"
        f" perturbation norm {result.perturbation_norm:.3e}",
    )
    session.to_touchstone(
        args.out,
        comment=f"passive macromodel exported by repro (from {args.path})",
    )
    _say(args, f"wrote {args.out}")
    _maybe_json(args, session)
    return 0


def _cmd_hinf(args) -> int:
    session = _fit_session(args, scattering_only=True).hinf(rtol=args.rtol)
    result = session.hinf_result
    _say(
        args,
        f"||H||_inf = {result.norm:.8f}"
        f"   (bracket [{result.lower:.8f}, {result.upper:.8f}],"
        f" {result.bisections} Hamiltonian sweeps)",
    )
    _say(args, f"attained near w = {result.peak_freq:.6g} rad/s")
    _maybe_json(args, session)
    return 0


def _cmd_simulate(args) -> int:
    from repro.timedomain import Stimulus, Termination

    if args.synth:
        from repro.synth import random_macromodel

        model = random_macromodel(
            args.synth_order,
            args.synth_ports,
            seed=args.seed,
            sigma_target=args.sigma_target,
        )
        session = Macromodel.from_pole_residue(model)
        session.configure(_session_config(args, base=session.config))
        _say(
            args,
            f"synthetic model: {args.synth_ports} ports,"
            f" {model.num_poles} poles, seed {args.seed},"
            f" sigma target {args.sigma_target:g}",
        )
    else:
        if not args.path:
            raise ValueError(
                "nothing to simulate: give a Touchstone path or --synth"
            )
        session = _fit_session(args, scattering_only=True)

    needs_check = args.enforce or args.stimulus == "worst-tone"
    if needs_check:
        session.check_passivity()
        _say(args, session.passivity_report.summary())

    # Resolve the worst-tone target from the *pre-enforcement* report:
    # the point of the scenario is to hit the repaired model with the
    # very stimulus that exposed the original violation.
    if args.stimulus == "worst-tone":
        from repro.timedomain import worst_tone

        bands = getattr(session.passivity_report, "bands", ())
        if not bands:
            _say(
                args,
                "no violation bands to target; falling back to the PRBS"
                " stimulus",
            )
            stimulus = Stimulus.prbs(
                amplitude=args.amplitude,
                bit_steps=args.bit_steps,
                seed=args.stim_seed,
            )
        else:
            band = max(bands, key=lambda b: b.severity)
            stimulus = worst_tone(
                session.model, band.peak_freq, amplitude=args.amplitude
            )
    elif args.stimulus == "prbs":
        stimulus = Stimulus.prbs(
            amplitude=args.amplitude,
            bit_steps=args.bit_steps,
            seed=args.stim_seed,
        )
    elif args.stimulus == "tone":
        if args.tone_freq is None:
            raise ValueError("--stimulus tone requires --tone-freq (rad/s)")
        stimulus = Stimulus.tone(args.tone_freq, amplitude=args.amplitude)
    else:
        stimulus = Stimulus(kind=args.stimulus, amplitude=args.amplitude)

    if args.enforce and not session.is_passive:
        session.enforce()
        result = session.enforcement_result
        _say(
            args,
            f"enforced in {result.iterations} iteration(s),"
            f" perturbation norm {result.perturbation_norm:.3e}",
        )

    termination = None
    if args.resistance is not None:
        termination = Termination(resistances=args.resistance)
    session.simulate(
        stimulus,
        dt=args.dt,
        num_steps=args.steps,
        integrator=args.integrator,
        discretization=args.discretization,
        termination=termination,
        tol=args.tol,
    )
    result = session.simulation_result
    _say(args, result.summary())
    for port, (e_in, e_out) in enumerate(
        zip(result.energy.port_input, result.energy.port_output)
    ):
        _say(args, f"  port {port}: in {e_in:.6g}, out {e_out:.6g}")
    _maybe_json(args, session)
    return 0 if result.energy.passive else 2


def _cmd_batch(args) -> int:
    from repro.batch import BatchRunner, synth_fleet

    sources = list(args.inputs)
    if args.synth > 0:
        sources.extend(
            synth_fleet(
                args.synth,
                order_per_column=args.synth_order,
                num_ports=args.synth_ports,
                base_seed=args.seed,
                sigma_target=args.sigma_target,
            )
        )
    if not sources:
        raise ValueError(
            "nothing to run: give Touchstone paths/globs and/or --synth N"
        )
    runner = BatchRunner(
        config=_session_config(args),
        workers=args.workers,
        timeout=args.timeout,
        backend=args.backend,
        num_poles=args.poles,
        enforce=args.enforce,
        margin=args.margin,
        simulate=args.simulate,
    )
    report = runner.run(sources)
    _say(args, report.summary())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        _say(args, f"wrote {args.out}")
    if getattr(args, "json", False):
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if report.all_ok else 4


def _cmd_cache(args) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.cache_command == "stats":
        payload = store.stats()
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"store:      {payload['root']} (schema {payload['schema']})")
        print(f"entries:    {payload['entries']}")
        cap = payload["max_bytes"]
        print(
            f"size:       {payload['total_bytes']} bytes"
            f" (cap: {cap if cap is not None else 'unlimited'})"
        )
        for stage, count in sorted(payload["stages"].items()):
            print(f"  stage {stage:<18} {count}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        payload = {"root": str(store.root), "removed": removed}
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"removed {removed} entries from {store.root}")
        return 0
    summary = store.prune(args.max_bytes)
    summary["root"] = str(store.root)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"pruned {summary['removed']} entries from {store.root};"
            f" {summary['entries']} left ({summary['total_bytes']} bytes)"
        )
    return 0


def _queue_config(args):
    """Layer the queue knobs: defaults < ``REPRO_QUEUE_*`` < typed flags."""
    from repro.queue import QueueConfig

    config = QueueConfig.from_env()
    explicit = getattr(args, "_explicit", set())
    overrides = {}
    if "queue" in explicit:
        overrides["path"] = args.queue
    if "lease" in explicit:
        overrides["lease_seconds"] = args.lease
    if "heartbeat" in explicit:
        overrides["heartbeat_seconds"] = args.heartbeat
    if "poll" in explicit:
        overrides["poll_seconds"] = args.poll
    if "max_attempts" in explicit:
        overrides["max_attempts"] = args.max_attempts
    if "rate" in explicit:
        overrides["rate"] = args.rate
    if "burst" in explicit:
        overrides["burst"] = args.burst
    return config.merged(**overrides) if overrides else config


def _cmd_serve(args) -> int:
    from repro.service import ReproServer

    # Layering mirrors the fitting commands, except the *service* default
    # is cache="readwrite": REPRO_* overrides it, typed flags win.
    config = RunConfig.from_env(base=RunConfig(cache="readwrite"))
    explicit = getattr(args, "_explicit", set())
    overrides = {}
    if "cache" in explicit:
        overrides["cache"] = args.cache
    if "cache_dir" in explicit:
        overrides["cache_dir"] = args.cache_dir
    if overrides:
        config = config.merged(**overrides)
    queue_config = _queue_config(args)
    if args.print_config:
        # Describing the configuration needs no socket: it must work
        # (and print the same JSON) while a server holds the port.
        from repro.service import JobManager
        from repro.service.server import describe_manager

        manager = JobManager(
            config=config,
            workers=args.workers,
            timeout=args.timeout,
            backend=args.backend,
            num_poles=args.poles,
            margin=args.margin,
            queue_config=queue_config,
        )
        try:
            payload = describe_manager(manager, args.host, args.port)
            print(json.dumps(payload, indent=2, sort_keys=True))
        finally:
            manager.shutdown()
        return 0

    server = ReproServer.create(
        host=args.host,
        port=args.port,
        config=config,
        workers=args.workers,
        timeout=args.timeout,
        backend=args.backend,
        num_poles=args.poles,
        margin=args.margin,
        queue_config=queue_config,
    )
    try:
        print(f"serving on {server.url} (ctrl-c to stop)", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        return 0
    finally:
        server.server_close()
        server.manager.shutdown()


def _cmd_worker(args) -> int:
    import signal

    from repro.queue import QueueWorker
    from repro.utils.logging import get_logger, structured_logging_active

    log = get_logger("cli.worker")

    def say(message: str) -> None:
        # Under REPRO_LOG_FORMAT=json every stderr line must be one
        # structured record, so the human one-liners route through the
        # logger instead of a bare print.
        if structured_logging_active():
            log.info(message)
        else:
            print(message, file=sys.stderr)

    queue_config = _queue_config(args)
    queue_path = queue_config.resolve_path(args.cache_dir)
    worker = QueueWorker(
        queue_path,
        queue_config=queue_config,
        worker_id=args.worker_id,
        backend=args.backend,
        timeout=args.timeout,
        max_jobs=args.max_jobs,
        idle_seconds=args.idle_exit,
    )

    def drain(signum, frame):
        # Graceful drain: finish (and ack) the leased job, then exit 0.
        say("drain requested; finishing the current job")
        worker.request_stop()

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    say(
        f"worker {worker.worker_id} draining {queue_path}"
        f" ({args.backend} backend; ctrl-c or SIGTERM to drain)"
    )
    completed = worker.run()
    say(f"worker exiting after {completed} job(s)")
    return 0


def _cmd_jobs(args) -> int:
    from repro.queue import JobQueue

    queue_config = _queue_config(args)
    queue_path = queue_config.resolve_path(args.cache_dir)
    if not queue_path.is_file():
        raise ValueError(
            f"no queue database at {queue_path} (start 'repro serve' or"
            " point --queue/REPRO_QUEUE_PATH at one)"
        )
    queue = JobQueue(queue_path, max_attempts=queue_config.max_attempts)
    try:
        if args.jobs_command == "list":
            rows = queue.list(
                state=args.state, task=args.task, limit=args.limit
            )
            if args.json:
                print(
                    json.dumps(
                        [row.to_dict() for row in rows],
                        indent=2,
                        sort_keys=True,
                    )
                )
                return 0
            if not rows:
                print("no jobs match")
                return 0
            print(
                f"{'id':<14} {'state':<8} {'task':<9} {'att':>3}"
                f" {'worker':<24} name"
            )
            for row in rows:
                print(
                    f"{row.id:<14} {row.state:<8} {row.task:<9}"
                    f" {row.attempts:>3} {(row.worker or '-'):<24} {row.name}"
                )
            return 0
        if args.jobs_command == "show":
            row = queue.get(args.id)
            if row is None:
                raise ValueError(f"unknown job id {args.id!r}")
            payload = dict(row.to_dict(), spec=row.spec)
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            for field in (
                "id",
                "name",
                "task",
                "kind",
                "status",
                "attempts",
                "worker",
                "key",
                "error",
            ):
                print(f"{field + ':':<10} {payload[field]}")
            return 0
        if args.jobs_command == "retry":
            if not queue.retry(args.id):
                row = queue.get(args.id)
                if row is None:
                    raise ValueError(f"unknown job id {args.id!r}")
                raise ValueError(
                    f"job {args.id} is {row.state}; only finished jobs"
                    " (done/error/timeout/failed) can be retried"
                )
            payload = {"id": args.id, "status": "queued"}
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(f"requeued job {args.id}")
            return 0
        removed = queue.purge(args.state)
        payload = {"state": args.state, "removed": removed}
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"purged {removed} {args.state} job(s)")
        return 0
    finally:
        queue.close()


def _cmd_trace(args) -> int:
    """``repro trace <job-id>`` — the job's span tree as a waterfall.

    Reads the durable trace ring out of the queue database, so it works
    on live *and* finished jobs, from any process that can see the
    queue file — no running service required.
    """
    from repro.obs.trace import build_tree, render_waterfall
    from repro.queue import JobQueue

    queue_config = _queue_config(args)
    queue_path = queue_config.resolve_path(args.cache_dir)
    if not queue_path.is_file():
        raise ValueError(
            f"no queue database at {queue_path} (start 'repro serve' or"
            " point --queue/REPRO_QUEUE_PATH at one)"
        )
    queue = JobQueue(queue_path, max_attempts=queue_config.max_attempts)
    try:
        row = queue.get(args.id)
        if row is None:
            raise ValueError(f"unknown job id {args.id!r}")
        # Job-scoped (a trace id may be shared across submissions);
        # JobQueue.trace_spans(trace_id=...) serves cross-job queries.
        spans = queue.trace_spans(job_id=args.id)
        if args.json:
            print(
                json.dumps(
                    {
                        "job_id": row.id,
                        "trace_id": row.trace_id,
                        "status": row.state,
                        "span_count": len(spans),
                        "spans": spans,
                        "tree": build_tree(spans),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        if not spans:
            print(
                f"no spans recorded for job {args.id} (state: {row.state};"
                " traces appear as attempts finish, and REPRO_TRACE=off"
                " disables them)"
            )
            return 0
        print(f"job {row.id}  trace {row.trace_id}  state {row.state}")
        print(render_waterfall(spans, width=args.width))
        return 0
    finally:
        queue.close()


def _cmd_faults(args) -> int:
    """``repro faults list`` — the registry, and any active plan.

    This is the anti-drift mirror of the docs: the output is generated
    from :data:`~repro.faults.INJECTION_POINTS`, so documentation and
    tests can be checked against the single source of truth.
    """
    from repro.faults import INJECTION_POINTS, FaultPlan

    plan = FaultPlan.from_env()  # ConfigError on a malformed REPRO_FAULTS
    if getattr(args, "json", False):
        print(
            json.dumps(
                {
                    "points": [
                        point.to_dict()
                        for point in INJECTION_POINTS.values()
                    ],
                    "plan": plan.to_dict() if plan is not None else None,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"registered injection points ({len(INJECTION_POINTS)}):")
    width = max(len(name) for name in INJECTION_POINTS)
    for name, point in sorted(INJECTION_POINTS.items()):
        kinds = ", ".join(point.kinds)
        print(f"  {name:<{width}}  [{kinds}]")
        print(f"  {'':<{width}}    {point.description}")
    if plan is None:
        print("active plan: none (REPRO_FAULTS is unset)")
    else:
        print(f"active plan (REPRO_FAULTS): {plan.describe()}")
    return 0


def _cmd_strategies(args) -> int:
    for name in available_strategies(include_auto=False):
        spec = get_strategy(name)
        if spec.max_threads == 1:
            threads = "1 thread"
        elif spec.min_threads > 1:
            threads = f">= {spec.min_threads} threads"
            if spec.max_threads is not None:
                threads += f", <= {spec.max_threads}"
        elif spec.max_threads is not None:
            threads = f"<= {spec.max_threads} threads"
        else:
            threads = "any thread count"
        backends = "/".join(spec.backends)
        print(f"{spec.name:<12} [{threads}; {backends}] {spec.description}")
    print(f"{'auto':<12} [resolves] {AUTO_DESCRIPTION}")
    print(f"representations: {', '.join(REPRESENTATIONS)}")
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.benchstage import DEFAULT_STAGES, run_bench_stages

    stages = args.stages or list(DEFAULT_STAGES)
    records = run_bench_stages(
        stages,
        scale=args.scale,
        threads=args.threads,
        profile=args.profile,
        profile_sort=args.profile_sort,
        profile_top=args.profile_top,
    )
    for record in records:
        line = f"{record['name']:<14} {record['seconds']:.4f}s"
        if args.profile and record.get("profile"):
            hottest = record["profile"]["top"][0]
            line += (
                f"  hottest: {hottest['function']}"
                f" ({hottest[args.profile_sort]:.4f}s {args.profile_sort})"
            )
        print(line, file=sys.stderr)
    document = {
        "scale": args.scale,
        "threads": args.threads,
        "profiled": bool(args.profile),
        "profile_sort": args.profile_sort if args.profile else None,
        "stages": records,
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    import cProfile

    from repro.obs.profiler import profile_to_dict

    argv = list(args.argv)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        print(
            "error: profile needs a subcommand to run,"
            " e.g. `repro profile check dev.s2p`",
            file=sys.stderr,
        )
        return 1
    if argv[0] == "profile":
        print("error: refusing to profile `repro profile`", file=sys.stderr)
        return 1
    profiler = cProfile.Profile()
    code = profiler.runcall(main, argv)
    report = profile_to_dict(profiler, top_n=args.top, sort=args.sort)
    report["command"] = argv
    report["exit_code"] = int(code)
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"profile of `repro {' '.join(argv)}` — top {args.top}"
            f" by {args.sort}:",
            file=sys.stderr,
        )
        for row in report["top"]:
            location = f"{row['file']}:{row['line']}"
            print(
                f"  {row['cumtime']:9.4f}s cum  {row['tottime']:9.4f}s tot"
                f"  {row['ncalls']:>8}x  {row['function']}  ({location})",
                file=sys.stderr,
            )
    return code


_COMMANDS = {
    "info": _cmd_info,
    "check": _cmd_check,
    "enforce": _cmd_enforce,
    "hinf": _cmd_hinf,
    "simulate": _cmd_simulate,
    "batch": _cmd_batch,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "jobs": _cmd_jobs,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "strategies": _cmd_strategies,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
