"""Command-line interface: passivity tools for Touchstone files.

Usage (after ``pip install -e .``)::

    python -m repro info    device.s4p
    python -m repro check   device.s4p --poles 40 --threads 8
    python -m repro enforce device.s4p --poles 40 --out passive.s4p
    python -m repro hinf    device.s4p --poles 40

``check`` fits a rational macromodel to the file and runs the Hamiltonian
passivity characterization; ``enforce`` additionally repairs the model and
writes the resampled passive response; ``hinf`` computes the H-infinity
norm by Hamiltonian bisection; ``info`` summarizes the file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.options import SolverOptions
from repro.passivity.characterization import characterize_passivity
from repro.passivity.enforcement import enforce_passivity
from repro.passivity.hinf import hinf_norm
from repro.touchstone.reader import read_touchstone
from repro.touchstone.writer import write_touchstone
from repro.vectfit.vector_fitting import vector_fit

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hamiltonian passivity tools for interconnect macromodels",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a Touchstone file")
    info.add_argument("path", help="input .sNp file")

    def add_fit_args(p):
        p.add_argument("path", help="input .sNp file")
        p.add_argument("--poles", type=int, default=30, help="model order")
        p.add_argument("--threads", type=int, default=1, help="solver threads")

    check = sub.add_parser("check", help="fit a macromodel and test passivity")
    add_fit_args(check)
    check.add_argument(
        "--plot", action="store_true", help="ASCII plot of the sigma sweep"
    )

    enforce = sub.add_parser("enforce", help="fit, enforce passivity, export")
    add_fit_args(enforce)
    enforce.add_argument("--out", required=True, help="output .sNp path")
    enforce.add_argument(
        "--margin", type=float, default=0.002, help="enforcement margin below 1"
    )

    hinf = sub.add_parser("hinf", help="H-infinity norm via Hamiltonian bisection")
    add_fit_args(hinf)
    hinf.add_argument("--rtol", type=float, default=1e-6, help="bracket tolerance")
    return parser


def _fit_model(args) -> tuple:
    data = read_touchstone(args.path)
    fit = vector_fit(data.freqs_rad, data.matrices, num_poles=args.poles)
    print(
        f"fit: {args.poles} poles, rms error {fit.rms_error:.3e},"
        f" max error {fit.max_error:.3e}"
    )
    return data, fit


def _cmd_info(args) -> int:
    data = read_touchstone(args.path)
    sv = np.linalg.svd(data.matrices, compute_uv=False)
    print(f"file:       {args.path}")
    print(f"ports:      {data.num_ports}")
    print(f"parameter:  {data.parameter} (z0 = {data.z0:g} ohm)")
    print(
        f"band:       {data.freqs_hz[0]:.6g} .. {data.freqs_hz[-1]:.6g} Hz"
        f" ({data.freqs_hz.size} points)"
    )
    print(f"max sigma:  {sv.max():.6f} (sampled; > 1 suggests non-passive data)")
    return 0


def _cmd_check(args) -> int:
    data, fit = _fit_model(args)
    report = characterize_passivity(fit.model, num_threads=args.threads)
    print(report.summary())
    solve = report.solve
    print(
        f"eigensolver: {solve.shifts_processed} shifts,"
        f" {solve.work['operator_applies']} operator applies,"
        f" {solve.elapsed:.3f}s"
    )
    if getattr(args, "plot", False):
        from repro.reporting.ascii_plot import sigma_plot

        top = max(solve.band[1], float(data.freqs_rad[-1]))
        grid = np.linspace(float(data.freqs_rad[0]), top, 300)
        print()
        print(
            sigma_plot(
                fit.model,
                grid,
                mark_bands=[(b.lo, b.hi) for b in report.bands],
            )
        )
    return 0 if report.passive else 2


def _cmd_enforce(args) -> int:
    data, fit = _fit_model(args)
    result = enforce_passivity(
        fit.model, num_threads=args.threads, margin=args.margin
    )
    if not result.passive:
        print("enforcement FAILED to reach passivity within the iteration cap")
        return 3
    print(
        f"enforced in {result.iterations} iteration(s),"
        f" perturbation norm {result.perturbation_norm:.3e}"
    )
    write_touchstone(
        args.out,
        data.freqs_hz,
        result.model.frequency_response(data.freqs_rad),
        fmt="RI",
        z0=data.z0,
        comment=f"passive macromodel exported by repro (from {args.path})",
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_hinf(args) -> int:
    _, fit = _fit_model(args)
    result = hinf_norm(fit.model, rtol=args.rtol, num_threads=args.threads)
    print(
        f"||H||_inf = {result.norm:.8f}"
        f"   (bracket [{result.lower:.8f}, {result.upper:.8f}],"
        f" {result.bisections} Hamiltonian sweeps)"
    )
    print(f"attained near w = {result.peak_freq:.6g} rad/s")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "check": _cmd_check,
    "enforce": _cmd_enforce,
    "hinf": _cmd_hinf,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
