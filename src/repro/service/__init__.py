"""Persistent macromodel service: an HTTP job server over the pipeline.

``repro serve`` turns the library into a long-running daemon: clients
POST job specifications (synthetic, Touchstone, or inline-model sources;
fit/check/enforce/hinf/simulate tasks) to ``/v1/jobs``, poll ``/v1/jobs/<id>``,
and fetch content-addressed payloads from ``/v1/results/<key>``.  Jobs
execute asynchronously on a bounded worker pool backed by the process
batch backend (real per-job timeout kills), results land in the
:mod:`repro.store` cache, and a resubmission of an already-computed job
returns immediately with ``"cached": true`` — the serving layer the
ROADMAP's heavy-traffic north star builds on.

Everything is standard library (``http.server``): a clean wheel install
can serve and consume the API with no extra dependencies.
"""

from repro.service.manager import (
    VALID_KINDS,
    VALID_TASKS,
    JobError,
    JobManager,
    JobRecord,
)
from repro.service.server import MAX_BODY_BYTES, ReproServer

__all__ = [
    "JobError",
    "JobManager",
    "JobRecord",
    "ReproServer",
    "MAX_BODY_BYTES",
    "VALID_TASKS",
    "VALID_KINDS",
]
