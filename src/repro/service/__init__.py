"""Persistent macromodel service: an HTTP job server over a durable queue.

``repro serve`` turns the library into a long-running daemon: clients
POST job specifications (synthetic, Touchstone, or inline-model sources;
fit/check/enforce/hinf/simulate tasks) to ``/v1/jobs``, poll
``/v1/jobs/<id>`` (or long-poll ``/v1/jobs/<id>/events``), and fetch
content-addressed payloads from ``/v1/results/<key>``.  Submissions land
in the persistent :mod:`repro.queue` (one SQLite file next to the result
store), execution happens in queue workers — threads embedded in the
server and/or external ``repro worker`` processes sharing the file — and
results land in the :mod:`repro.store` cache, so a resubmission of an
already-computed job returns immediately with ``"cached": true``.  A
service restart loses nothing: the queue is the state.

Everything is standard library (``http.server`` + ``sqlite3``): a clean
wheel install can serve and consume the API with no extra dependencies.
"""

from repro.service.manager import (
    VALID_KINDS,
    VALID_TASKS,
    JobError,
    JobManager,
    JobRecord,
)
from repro.service.server import (
    MAX_BODY_BYTES,
    MAX_POLL_SECONDS,
    ReproServer,
)

__all__ = [
    "JobError",
    "JobManager",
    "JobRecord",
    "ReproServer",
    "MAX_BODY_BYTES",
    "MAX_POLL_SECONDS",
    "VALID_TASKS",
    "VALID_KINDS",
]
