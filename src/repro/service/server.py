"""The HTTP front-end: a stdlib-only JSON API over the job manager.

Endpoints (all JSON)::

    GET  /healthz            liveness: {"status": "ok", "version": ...}
    GET  /v1/stats           jobs by status, worker pool, store stats
    POST /v1/jobs            submit a job spec; 202 queued / 200 cached
    GET  /v1/jobs/<id>       one job record (status, result when done)
    GET  /v1/results/<key>   raw result-store payload by cache key

Built on ``http.server.ThreadingHTTPServer`` — no third-party web stack,
so a clean wheel install serves traffic with nothing but the standard
library.  Each request thread only touches the in-memory registry and
the on-disk store; the heavy lifting happens on the manager's bounded
worker pool, so polling stays microsecond-cheap while eigensweeps run.

Embedding (tests, notebooks, the example client)::

    from repro.service import ReproServer

    server = ReproServer.create(port=0)      # ephemeral port
    server.start_background()
    ... http requests against server.url ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.core.config import RunConfig
from repro.service.manager import JobError, JobManager
from repro.utils.logging import get_logger

__all__ = ["ReproServer", "MAX_BODY_BYTES", "describe_manager"]

_LOG = get_logger("service.http")

#: Upper bound on request bodies (model payloads are a few MiB at most).
MAX_BODY_BYTES = 32 * 1024 * 1024


def _repro_version() -> str:
    from repro import __version__

    return __version__


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproServer`'s manager."""

    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        _LOG.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise JobError("request body required (JSON object)")
        if length > MAX_BODY_BYTES:
            raise JobError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise JobError("request body must be a JSON object")
        return doc

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            server: ReproServer = self.server  # type: ignore[assignment]
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": _repro_version(),
                    "uptime_seconds": time.time() - server.started,
                },
            )
            return
        if path == "/v1/stats":
            self._send_json(200, self.manager.stats())
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            record = self.manager.get(job_id)
            if record is None:
                self._send_json(404, {"error": f"unknown job id {job_id!r}"})
                return
            self._send_json(200, record.to_dict())
            return
        if path.startswith("/v1/results/"):
            key = path[len("/v1/results/"):]
            payload = self.manager.result_payload(key)
            if payload is None:
                self._send_json(
                    404, {"error": f"no stored result under key {key!r}"}
                )
                return
            self._send_json(200, {"key": key, "payload": payload})
            return
        self._send_json(404, {"error": f"unknown endpoint {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/jobs":
            self._send_json(404, {"error": f"unknown endpoint {path!r}"})
            return
        try:
            spec = self._read_json_body()
            record = self.manager.submit(spec)
        except (JobError, TypeError, ValueError) as exc:
            # TypeError covers malformed numeric fields (e.g. "seed":
            # null) raised by the int()/float() coercions — a client
            # error, not a server crash.
            self._send_json(400, {"error": str(exc)})
            return
        except RuntimeError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        # A cached submission is complete right now (200); fresh work is
        # accepted for asynchronous execution (202).
        self._send_json(200 if record.cached else 202, record.to_dict())


class ReproServer(ThreadingHTTPServer):
    """The macromodel service: HTTP server + job manager in one object."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager
        self.started = time.time()
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def create(
        cls,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[RunConfig] = None,
        workers: int = 2,
        timeout: Optional[float] = None,
        backend: str = "process",
        num_poles: int = 30,
        margin: float = 0.002,
    ) -> "ReproServer":
        """Build a server on ``host:port`` (0 binds an ephemeral port)."""
        manager = JobManager(
            config=config,
            workers=workers,
            timeout=timeout,
            backend=backend,
            num_poles=num_poles,
            margin=margin,
        )
        return cls((host, port), manager)

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (for tests and embedded clients)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self) -> None:
        """Shut the HTTP loop and the worker pool down."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def describe(self) -> dict:
        """Resolved server configuration (``repro serve --print-config``)."""
        return dict(
            describe_manager(self.manager, self.server_address[0], self.port),
            url=self.url,
        )


def describe_manager(manager: JobManager, host: str, port: int) -> dict:
    """The resolved-configuration payload, computable without a socket.

    ``repro serve --print-config`` uses this directly so describing a
    configuration never fails on an already-bound port.
    """
    return {
        "host": host,
        "port": int(port),
        "workers": manager.workers,
        "backend": manager.backend,
        "timeout": manager.timeout,
        "num_poles": manager.num_poles,
        "margin": manager.margin,
        "config": manager.config.to_dict(),
        "store": None
        if manager.store is None
        else {
            "root": str(manager.store.root),
            "max_bytes": manager.store.max_bytes,
            "schema": manager.store.schema,
        },
        "version": _repro_version(),
    }
