"""The HTTP front-end: a stdlib-only JSON API over the durable queue.

Endpoints (all JSON unless noted)::

    GET  /healthz                 liveness: {"status": "ok", ...}
    GET  /v1/stats                queue depth, workers, store stats, and
                                  per-endpoint/per-task latency histograms
    GET  /v1/metrics              process metrics, Prometheus text format
    POST /v1/jobs                 submit a job spec; 202 queued / 200 cached
    GET  /v1/jobs/<id>            one job record (status, result when done)
    GET  /v1/jobs/<id>/events     long-poll a state transition
                                  (?since=<version>&timeout=<seconds>)
    GET  /v1/jobs/<id>/trace      the job's span tree (distributed trace)
    GET  /v1/results/<key>        raw result-store payload by cache key

``POST /v1/jobs`` honors an ``X-Repro-Trace-Id`` request header: the
(sanitized) value becomes the job's trace id, so a caller that spans
multiple services can stitch this job into its own distributed trace.
Absent or invalid, a fresh id is minted; either way it is returned in
the job record and reachable later via ``GET /v1/jobs/<id>/trace``.

Errors use one envelope everywhere::

    {"error": {"code": "<machine-readable>", "message": "<human-readable>"}}

with codes ``bad_request`` (400), ``not_found`` (404), ``rate_limited``
(429, with a ``Retry-After`` header), ``unavailable`` (503), and
``internal`` (500 — sanitized; tracebacks go to the log, never the
client).

Built on ``http.server.ThreadingHTTPServer`` — no third-party web stack,
so a clean wheel install serves traffic with nothing but the standard
library.  Request threads only touch the queue database and the on-disk
store; the heavy lifting happens in queue workers (embedded threads
and/or external ``repro worker`` processes), so polling stays cheap
while eigensweeps run.

Embedding (tests, notebooks, the example client)::

    from repro.service import ReproServer

    server = ReproServer.create(port=0)      # ephemeral port
    server.start_background()
    ... http requests against server.url ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.config import RunConfig
from repro.faults import inject as _inject
from repro.obs.metrics import get_registry as _obs_metrics
from repro.queue import QueueConfig
from repro.service.manager import JobError, JobManager
from repro.utils.logging import get_logger

__all__ = ["ReproServer", "MAX_BODY_BYTES", "MAX_POLL_SECONDS", "describe_manager"]

_LOG = get_logger("service.http")

#: Upper bound on request bodies (model payloads are a few MiB at most).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Upper bound on one ``/events`` long-poll (clients re-poll to wait
#: longer; unbounded waits would pin handler threads forever).
MAX_POLL_SECONDS = 60.0


def _repro_version() -> str:
    from repro import __version__

    return __version__


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproServer`'s manager."""

    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        _LOG.debug("%s - %s", self.address_string(), format % args)

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        """Structured access log (DEBUG; visible under REPRO_LOG_LEVEL).

        Replaces the stderr one-liner ``http.server`` would print with a
        record carrying method/path/status/duration and — when the
        request touched a job — its trace id, so JSON-mode logs
        correlate with the job's distributed trace.
        """
        try:
            status = int(code)
        except (TypeError, ValueError):
            status = str(code)
        started = getattr(self, "_started", None)
        extra = {
            "http_method": self.command,
            "http_path": urlsplit(self.path).path,
            "http_status": status,
            "duration_ms": None
            if started is None
            else round((time.perf_counter() - started) * 1000.0, 3),
        }
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            extra["trace_id"] = trace_id
        _LOG.debug(
            "%s %s -> %s", self.command, self.path, status, extra=extra
        )

    def _send_json(
        self, status: int, payload: dict, *, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        *,
        headers: Optional[dict] = None,
    ) -> None:
        """The one error envelope every endpoint speaks."""
        self._send_json(
            status,
            {"error": {"code": code, "message": message}},
            headers=headers,
        )

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise JobError("request body required (JSON object)")
        if length > MAX_BODY_BYTES:
            raise JobError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise JobError("request body must be a JSON object")
        return doc

    def _query(self) -> dict:
        return parse_qs(urlsplit(self.path).query)

    def _endpoint_label(self, method: str) -> str:
        """Low-cardinality endpoint label for the latency histograms.

        Path parameters (job ids, store keys) are collapsed so the
        metric set stays bounded no matter how many jobs pass through.
        """
        path = urlsplit(self.path).path.rstrip("/") or "/"
        if path == "/healthz":
            return "healthz"
        if path == "/v1/stats":
            return "stats"
        if path == "/v1/metrics":
            return "metrics"
        if path == "/v1/jobs":
            return "jobs.submit" if method == "POST" else "jobs"
        if path.startswith("/v1/jobs/") and path.endswith("/events"):
            return "jobs.events"
        if path.startswith("/v1/jobs/") and path.endswith("/trace"):
            return "jobs.trace"
        if path.startswith("/v1/jobs/"):
            return "jobs.get"
        if path.startswith("/v1/results/"):
            return "results.get"
        return "other"

    def _query_number(self, query: dict, name: str, default: float) -> float:
        values = query.get(name)
        if not values:
            return default
        try:
            return float(values[-1])
        except ValueError as exc:
            raise JobError(f"query parameter {name!r} must be a number") from exc

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        endpoint = self._endpoint_label("GET")
        started = time.perf_counter()
        self._started = started
        self._trace_id: Optional[str] = None
        try:
            _inject("http.request")
            self._route_get()
        except JobError as exc:
            self._send_error_json(400, "bad_request", str(exc))
        except RuntimeError as exc:
            # ServiceUnavailable and injected request faults: the client
            # should back off and retry, not give up.
            self._send_error_json(
                503, "unavailable", str(exc), headers={"Retry-After": "1"}
            )
        except Exception:
            # Sanitized: the traceback goes to the server log only —
            # clients never see internals.
            _LOG.exception("unhandled error serving GET %s", self.path)
            self._send_error_json(500, "internal", "internal server error")
        finally:
            registry = _obs_metrics()
            registry.count(f"http.requests.{endpoint}")
            registry.observe(
                f"http.{endpoint}", time.perf_counter() - started
            )

    def _route_get(self) -> None:
        path = urlsplit(self.path).path.rstrip("/") or "/"
        if path == "/healthz":
            server: ReproServer = self.server  # type: ignore[assignment]
            health = self.manager.health()
            # Degraded is still HTTP 200: the process is alive and reads
            # may serve — the body says what broke and how badly.
            self._send_json(
                200,
                {
                    "status": health["status"],
                    "subsystems": health["subsystems"],
                    "version": _repro_version(),
                    "uptime_seconds": time.time() - server.started,
                },
            )
            return
        if path == "/v1/stats":
            self._send_json(200, self.manager.stats())
            return
        if path == "/v1/metrics":
            # Prometheus-style text exposition of the process registry:
            # every counter and latency histogram recorded in this
            # process (HTTP handling, queue ops, store traffic, solver
            # stages of the embedded workers).
            body = _obs_metrics().render_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path.startswith("/v1/jobs/") and path.endswith("/events"):
            job_id = path[len("/v1/jobs/"):-len("/events")]
            query = self._query()
            since = int(self._query_number(query, "since", 0))
            timeout = min(
                MAX_POLL_SECONDS,
                max(0.0, self._query_number(query, "timeout", 30.0)),
            )
            record = self.manager.events(job_id, since=since, timeout=timeout)
            if record is None:
                self._send_error_json(
                    404, "not_found", f"unknown job id {job_id!r}"
                )
                return
            self._send_json(200, record.to_dict())
            return
        if path.startswith("/v1/jobs/") and path.endswith("/trace"):
            job_id = path[len("/v1/jobs/"):-len("/trace")]
            payload = self.manager.trace(job_id)
            if payload is None:
                self._send_error_json(
                    404, "not_found", f"unknown job id {job_id!r}"
                )
                return
            self._trace_id = payload.get("trace_id")
            self._send_json(200, payload)
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            record = self.manager.get(job_id)
            if record is None:
                self._send_error_json(
                    404, "not_found", f"unknown job id {job_id!r}"
                )
                return
            self._send_json(200, record.to_dict())
            return
        if path.startswith("/v1/results/"):
            key = path[len("/v1/results/"):]
            payload = self.manager.result_payload(key)
            if payload is None:
                self._send_error_json(
                    404, "not_found", f"no stored result under key {key!r}"
                )
                return
            self._send_json(200, {"key": key, "payload": payload})
            return
        self._send_error_json(404, "not_found", f"unknown endpoint {path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        endpoint = self._endpoint_label("POST")
        started = time.perf_counter()
        self._started = started
        self._trace_id = None
        try:
            _inject("http.request")
            self._route_post()
        except (JobError, TypeError, ValueError) as exc:
            # TypeError covers malformed numeric fields (e.g. "seed":
            # null) raised by the int()/float() coercions — a client
            # error, not a server crash.
            self._send_error_json(400, "bad_request", str(exc))
        except RuntimeError as exc:
            # ServiceUnavailable (queue down) and injected request
            # faults are retryable: say so with Retry-After.
            self._send_error_json(
                503, "unavailable", str(exc), headers={"Retry-After": "1"}
            )
        except Exception:
            _LOG.exception("unhandled error serving POST %s", self.path)
            self._send_error_json(500, "internal", "internal server error")
        finally:
            registry = _obs_metrics()
            registry.count(f"http.requests.{endpoint}")
            registry.observe(
                f"http.{endpoint}", time.perf_counter() - started
            )

    def _route_post(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/v1/jobs":
            self._send_error_json(
                404, "not_found", f"unknown endpoint {path!r}"
            )
            return
        allowed, retry_after = self.manager.check_rate(
            self.client_address[0]
        )
        if not allowed:
            self._send_error_json(
                429,
                "rate_limited",
                "job submission rate exceeded; retry after"
                f" {retry_after:.1f}s",
                headers={"Retry-After": f"{max(1, round(retry_after))}"},
            )
            return
        spec = self._read_json_body()
        record = self.manager.submit(
            spec, trace_id=self.headers.get("X-Repro-Trace-Id")
        )
        self._trace_id = record.trace_id
        # A cached submission is complete right now (200); fresh work is
        # accepted for asynchronous execution (202).
        self._send_json(200 if record.cached else 202, record.to_dict())


class ReproServer(ThreadingHTTPServer):
    """The macromodel service: HTTP server + queue front-end in one object."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager
        self.started = time.time()
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def create(
        cls,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[RunConfig] = None,
        workers: int = 2,
        timeout: Optional[float] = None,
        backend: str = "process",
        num_poles: int = 30,
        margin: float = 0.002,
        queue_config: Optional[QueueConfig] = None,
        queue_path: Optional[str] = None,
    ) -> "ReproServer":
        """Build a server on ``host:port`` (0 binds an ephemeral port)."""
        manager = JobManager(
            config=config,
            workers=workers,
            timeout=timeout,
            backend=backend,
            num_poles=num_poles,
            margin=margin,
            queue_config=queue_config,
            queue_path=queue_path,
        )
        return cls((host, port), manager)

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (for tests and embedded clients)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self) -> None:
        """Shut the HTTP loop down and drain the embedded workers."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def describe(self) -> dict:
        """Resolved server configuration (``repro serve --print-config``)."""
        return dict(
            describe_manager(self.manager, self.server_address[0], self.port),
            url=self.url,
        )


def describe_manager(manager: JobManager, host: str, port: int) -> dict:
    """The resolved-configuration payload, computable without a socket.

    ``repro serve --print-config`` uses this directly so describing a
    configuration never fails on an already-bound port.
    """
    return {
        "host": host,
        "port": int(port),
        "workers": manager.workers,
        "backend": manager.backend,
        "timeout": manager.timeout,
        "num_poles": manager.num_poles,
        "margin": manager.margin,
        "config": manager.config.to_dict(),
        "queue": dict(
            manager.queue_config.to_dict(), path=str(manager.queue_path)
        ),
        "store": None
        if manager.store is None
        else {
            "root": str(manager.store.root),
            "max_bytes": manager.store.max_bytes,
            "schema": manager.store.schema,
        },
        "version": _repro_version(),
    }
