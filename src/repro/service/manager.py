"""Job manager of the macromodel service: specs, records, worker pool.

The manager turns JSON job specifications into
:mod:`repro.batch.jobs` objects, runs them asynchronously on a bounded
thread pool whose tasks execute through :class:`~repro.batch.BatchRunner`
(one job per runner call — the existing process backend provides real
per-job timeout kills and crash isolation), and keeps a registry of
:class:`JobRecord` rows the HTTP layer serves.

Every job gets a content-addressed *job key* over (source, task,
parameters, config).  With caching enabled, a submission whose key is
already in the :class:`~repro.store.ResultStore` completes synchronously
— the response carries ``"cached": true`` and the stored result, and no
worker ever runs.  Completed results are written back to the store, so
the cache warms itself under traffic.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.batch.jobs import (
    VALID_TASKS,
    BatchJob,
    ModelJob,
    SynthJob,
    TouchstoneJob,
    task_settings,
)
from repro.batch.runner import BATCH_BACKENDS, BatchRunner
from repro.core.config import RunConfig
from repro.macromodel.rational import PoleResidueModel
from repro.store import ResultStore, content_key, file_digest, result_key
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_choice, ensure_positive_int

__all__ = ["JobError", "JobRecord", "JobManager", "VALID_TASKS", "VALID_KINDS"]

_LOG = get_logger("service")

# VALID_TASKS now lives in repro.batch.jobs (one registry drives both
# the validation here and the runner dispatch) and is re-exported for
# backwards compatibility.

#: Keys a job spec's "simulate" object may carry (the kwargs of
#: Macromodel.simulate that make sense over the wire; waveform-keeping
#: is deliberately excluded — responses stay compact witnesses).
SIMULATE_SPEC_KEYS = (
    "stimulus",
    "dt",
    "num_steps",
    "integrator",
    "discretization",
    "termination",
    "tol",
)

#: Model sources a job may name.
VALID_KINDS = ("synth", "touchstone", "model")

#: Submission statuses a record moves through.
_STATUSES = ("queued", "running", "done", "error", "timeout")


class JobError(ValueError):
    """A job specification could not be parsed or validated (HTTP 400)."""


@dataclass
class JobRecord:
    """One submission's lifecycle row (what ``GET /v1/jobs/<id>`` serves)."""

    id: str
    task: str
    name: str
    key: Optional[str]
    #: Light source summary only (kind); the full submission spec —
    #: which may embed a multi-MB inline model — is deliberately NOT
    #: retained, or the bounded registry would still pin gigabytes.
    spec: dict
    status: str = "queued"
    cached: bool = False
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON payload of this record."""
        return {
            "id": self.id,
            "task": self.task,
            "name": self.name,
            "key": self.key,
            "status": self.status,
            "cached": bool(self.cached),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "result": self.result,
            "error": self.error,
        }


def _job_from_spec(spec: Mapping[str, Any], name: str) -> BatchJob:
    """Build the :mod:`repro.batch.jobs` object a spec names."""
    kind = str(spec.get("kind", "synth")).lower()
    ensure_choice(kind, "job kind", VALID_KINDS)
    if kind == "synth":
        sigma_target = spec.get("sigma_target", 1.05)
        return SynthJob(
            name=name,
            order_per_column=ensure_positive_int(
                spec.get("order", 10), "order"
            ),
            num_ports=ensure_positive_int(spec.get("ports", 2), "ports"),
            seed=int(spec.get("seed", 0)),
            sigma_target=None if sigma_target is None else float(sigma_target),
        )
    if kind == "touchstone":
        path = spec.get("path")
        if not path or not isinstance(path, str):
            raise JobError("touchstone jobs require a 'path' string")
        if not Path(path).is_file():
            raise JobError(f"touchstone path not found: {path!r}")
        return TouchstoneJob(name=name, path=path)
    model_doc = spec.get("model")
    if not isinstance(model_doc, Mapping):
        raise JobError(
            "model jobs require a 'model' object"
            " (PoleResidueModel.to_dict() payload)"
        )
    try:
        model = PoleResidueModel.from_dict(dict(model_doc))
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"malformed model payload: {exc}") from exc
    return ModelJob(name=name, model=model)


def _input_digest(job: BatchJob, spec: Mapping[str, Any]) -> str:
    """Content digest of the job's model source for the job-level key.

    Deliberately excludes the job *name*: it is a display label (and
    defaults to a fresh per-submission id), so two submissions of the
    same source under different names must share one cache entry.
    """
    if isinstance(job, TouchstoneJob):
        # Hash the file *content*, not the path: moving or editing the
        # file must change the key, renaming the same bytes must not.
        return file_digest(job.path)
    if isinstance(job, ModelJob) and job.model is not None:
        return content_key(job.model.to_dict())
    source = {k: v for k, v in job.describe().items() if k != "name"}
    return content_key(source)


class JobManager:
    """Registry + bounded worker pool behind the HTTP endpoints.

    Parameters
    ----------
    config:
        Base :class:`RunConfig` applied to every job (a submission's
        ``"config"`` object merges on top).  Its ``cache`` mode governs
        both the stage-level store use inside workers and the job-level
        short-circuit at submission time.
    workers:
        Concurrent jobs (thread-pool bound; each thread drives one
        :class:`BatchRunner` process worker).
    timeout:
        Per-job wall-clock budget in seconds (process workers are killed
        on expiry).
    backend:
        Fleet backend jobs execute on (``"process"`` default).
    num_poles, margin:
        Defaults for specs that omit them.
    max_records:
        In-memory registry bound: once more than this many *finished*
        records accumulate, the oldest finished ones are dropped.
        Queued and running jobs are never evicted.  Successful results
        of cache-enabled jobs remain fetchable through
        ``/v1/results/<key>`` (the store is the durable tier); failed
        or cache-off outcomes are gone once evicted — the registry is a
        polling window, not an archive.
    """

    #: Default registry bound — generous for polling clients, small
    #: enough that a long-running daemon cannot accumulate gigabytes of
    #: result payloads in memory.
    DEFAULT_MAX_RECORDS = 1024

    def __init__(
        self,
        *,
        config: Optional[RunConfig] = None,
        workers: int = 2,
        timeout: Optional[float] = None,
        backend: str = "process",
        num_poles: int = 30,
        margin: float = 0.002,
        max_records: Optional[int] = None,
    ) -> None:
        ensure_choice(backend, "service backend", BATCH_BACKENDS)
        self.config = config if config is not None else RunConfig()
        self.workers = ensure_positive_int(workers, "workers")
        if timeout is not None and timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self.backend = backend
        self.num_poles = ensure_positive_int(num_poles, "num_poles")
        self.margin = float(margin)
        self.store: Optional[ResultStore] = (
            ResultStore.from_config(self.config)
            if self.config.cache != "off"
            else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self.max_records = ensure_positive_int(
            max_records if max_records is not None else self.DEFAULT_MAX_RECORDS,
            "max_records",
        )
        self._lock = threading.Lock()
        # Insertion-ordered (dict guarantee): eviction walks oldest-first.
        self._jobs: Dict[str, JobRecord] = {}
        self._counters = {"submitted": 0, "completed": 0, "cached": 0}
        self._shutdown = False

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished records beyond ``max_records``.

        Caller holds ``self._lock``.  In-flight records are exempt, so a
        registry packed with queued work can temporarily exceed the
        bound rather than forget jobs clients are still waiting on.
        """
        excess = len(self._jobs) - self.max_records
        if excess <= 0:
            return
        for job_id in [
            job_id
            for job_id, record in self._jobs.items()
            if record.status in ("done", "error", "timeout")
        ][:excess]:
            del self._jobs[job_id]

    # -- submission ---------------------------------------------------------

    def _effective_config(self, spec: Mapping[str, Any]) -> RunConfig:
        overrides = spec.get("config")
        if overrides is None:
            return self.config
        if not isinstance(overrides, Mapping):
            raise JobError("'config' must be an object of RunConfig fields")
        try:
            return self.config.merged(**dict(overrides))
        except (TypeError, ValueError) as exc:
            raise JobError(f"invalid config override: {exc}") from exc

    def submit(self, spec: Mapping[str, Any]) -> JobRecord:
        """Validate, register, and (unless cached) enqueue one job.

        Returns the registered record: status ``"queued"`` for fresh
        work, or ``"done"`` with ``cached=True`` when the job-level key
        was already in the store (the fast path the service exists for).
        """
        if self._shutdown:
            raise RuntimeError("the job manager is shut down")
        if not isinstance(spec, Mapping):
            raise JobError("job spec must be a JSON object")
        task = str(spec.get("task", "check")).lower()
        try:
            # One registry (repro.batch.jobs) validates the task AND
            # names the runner settings it maps to; unknown tasks become
            # a clean 400 carrying the full allowed list.
            task_overrides = task_settings(task)
        except ValueError as exc:
            raise JobError(str(exc)) from None
        sim_params = self._simulate_params(spec, task)
        job_id = uuid.uuid4().hex[:12]
        name = str(spec.get("name") or f"{task}-{job_id}")
        job = _job_from_spec(spec, name)
        config = self._effective_config(spec)
        num_poles = ensure_positive_int(
            spec.get("num_poles", self.num_poles), "num_poles"
        )
        margin = float(spec.get("margin", self.margin))
        key: Optional[str] = None
        key_params = {"task": task, "num_poles": num_poles, "margin": margin}
        if task == "simulate":
            # Folded into the key only for simulate jobs, so the keys of
            # every pre-existing task stay byte-identical.
            key_params["simulate"] = sim_params or {}
        try:
            key = result_key(
                stage="service-job",
                input_digest=_input_digest(job, spec),
                config=config,
                params=key_params,
            )
        except (OSError, TypeError, ValueError):
            # Unhashable source (e.g. the file vanished between checks):
            # the job still runs, it just cannot short-circuit.
            key = None

        record = JobRecord(
            id=job_id,
            task=task,
            name=name,
            key=key,
            spec={"kind": str(spec.get("kind", "synth")).lower()},
        )
        with self._lock:
            self._jobs[job_id] = record
            self._counters["submitted"] += 1
            self._evict_finished_locked()

        # The short-circuit honors the *effective* config: a submission
        # that opts out (`"config": {"cache": "off"}`) must recompute,
        # mirroring the write path in _run.
        if (
            key is not None
            and self.store is not None
            and config.cache in ("read", "readwrite")
        ):
            payload = self.store.get(key)
            if payload is not None:
                now = time.time()
                record.status = str(payload.get("status", "done"))
                if record.status == "ok":
                    record.status = "done"
                record.cached = True
                record.started = now
                record.finished = now
                record.result = payload
                with self._lock:
                    self._counters["cached"] += 1
                    self._counters["completed"] += 1
                return record

        self._pool.submit(
            self._run,
            record,
            job,
            config,
            task_overrides,
            sim_params,
            num_poles,
            margin,
            key,
        )
        return record

    @staticmethod
    def _simulate_params(spec: Mapping[str, Any], task: str) -> Optional[dict]:
        """Validate the optional ``"simulate"`` object of a job spec."""
        sim = spec.get("simulate")
        if sim is None:
            return None
        if task != "simulate":
            raise JobError(
                "the 'simulate' object only applies to task 'simulate'"
            )
        if not isinstance(sim, Mapping):
            raise JobError(
                "'simulate' must be an object of Macromodel.simulate"
                " parameters"
            )
        unknown = sorted(set(sim) - set(SIMULATE_SPEC_KEYS))
        if unknown:
            raise JobError(
                f"unknown simulate parameter(s) {', '.join(unknown)};"
                f" allowed: {', '.join(SIMULATE_SPEC_KEYS)}"
            )
        return dict(sim)

    # -- execution ----------------------------------------------------------

    def _run(
        self,
        record: JobRecord,
        job: BatchJob,
        config: RunConfig,
        task_overrides: dict,
        sim_params: Optional[dict],
        num_poles: int,
        margin: float,
        key: Optional[str],
    ) -> None:
        record.status = "running"
        record.started = time.time()
        try:
            runner = BatchRunner(
                config=config,
                workers=1,
                timeout=self.timeout,
                backend=self.backend,
                num_poles=num_poles,
                margin=margin,
                simulate_params=sim_params,
                **task_overrides,
            )
            report = runner.run([job])
            result = report.results[0]
            payload = result.to_dict()
            # Persist BEFORE flipping the status: a client polling this
            # record may resubmit the instant it sees "done", and that
            # resubmission must find the store entry already in place.
            if (
                result.ok
                and key is not None
                and self.store is not None
                and config.cache == "readwrite"
            ):
                self.store.put(key, payload, stage="service-job")
            record.result = payload
            record.error = result.error
            record.status = "done" if result.ok else result.status
        except Exception as exc:  # a broken job must not kill the worker
            _LOG.debug("job %s failed: %r", record.id, exc)
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
        finally:
            record.finished = time.time()
            with self._lock:
                self._counters["completed"] += 1

    # -- inspection ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        """Look up one record by id."""
        with self._lock:
            return self._jobs.get(job_id)

    def result_payload(self, key: str) -> Optional[dict]:
        """Fetch a raw store payload (``GET /v1/results/<key>``)."""
        if self.store is None:
            return None
        try:
            return self.store.get(key)
        except ValueError:
            return None

    def stats(self) -> dict:
        """Aggregate service statistics (``GET /v1/stats``)."""
        with self._lock:
            by_status: Dict[str, int] = {status: 0 for status in _STATUSES}
            for record in self._jobs.values():
                by_status[record.status] = by_status.get(record.status, 0) + 1
            counters = dict(self._counters)
        return {
            "workers": self.workers,
            "backend": self.backend,
            "timeout": self.timeout,
            "cache": self.config.cache,
            "jobs": {"total": counters["submitted"], **by_status},
            "cached_submissions": counters["cached"],
            "completed": counters["completed"],
            "store": self.store.stats() if self.store is not None else None,
        }

    def shutdown(self, *, wait: bool = False) -> None:
        """Stop accepting jobs and release the pool."""
        self._shutdown = True
        self._pool.shutdown(wait=wait, cancel_futures=True)
