"""Job manager of the macromodel service: the durable-queue front tier.

The manager validates JSON job specifications (via
:func:`repro.queue.parse_spec`) and **enqueues** them into the
persistent :class:`~repro.queue.JobQueue` — it no longer executes
anything on an in-process pool.  Execution belongs to
:class:`~repro.queue.QueueWorker` instances: external ``repro worker``
processes attached to the same queue file, and/or the embedded worker
threads this manager spawns (``workers`` > 0) so the single-process
developer experience keeps working out of the box.

Every job gets a content-addressed *job key* over (source, task,
parameters, config).  With caching enabled, a submission whose key is
already in the :class:`~repro.store.ResultStore` is inserted already
``done`` — the response carries ``"cached": true`` and the stored
result, and no worker ever runs.  Completed results are written back to
the store by the workers, so the cache warms itself under traffic.

Because the queue is one SQLite file, a service restart loses nothing:
queued jobs stay queued, running jobs are reclaimed when their lease
expires, finished jobs keep serving their results.
"""

from __future__ import annotations

import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.batch.runner import BATCH_BACKENDS
from repro.core.config import RunConfig
from repro.faults import init_from_env as _faults_init_from_env
from repro.obs import trace as _trace
from repro.obs.metrics import Histogram
from repro.obs.metrics import get_registry as _obs_metrics
from repro.queue import (
    SIMULATE_SPEC_KEYS,
    VALID_KINDS,
    VALID_TASKS,
    JobError,
    JobQueue,
    JobRow,
    QueueConfig,
    QueueWorker,
    TokenBucketLimiter,
    input_digest,
    job_from_spec,
    parse_spec,
)
from repro.store import ResultStore
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_choice, ensure_positive_int

__all__ = [
    "JobError",
    "JobRecord",
    "JobManager",
    "ServiceUnavailable",
    "SIMULATE_SPEC_KEYS",
    "VALID_TASKS",
    "VALID_KINDS",
]


class ServiceUnavailable(RuntimeError):
    """The write path is down (queue unreachable); reads may still serve.

    The HTTP layer maps this to ``503`` with a ``Retry-After`` header —
    the client's cue to back off and retry rather than treat the outage
    as a permanent failure.
    """

_LOG = get_logger("service")

#: Former name of the row type ``GET /v1/jobs/<id>`` serves; the queue's
#: row kept the old field names, so the alias keeps old imports working.
JobRecord = JobRow

# The spec helpers moved to repro.queue.spec when the queue subsystem
# absorbed job parsing; the old private names stay importable.
_job_from_spec = job_from_spec
_input_digest = input_digest


class JobManager:
    """Validation + durable queue + embedded worker fleet.

    Parameters
    ----------
    config:
        Base :class:`RunConfig` applied to every job (a submission's
        ``"config"`` object merges on top).  Its ``cache`` mode governs
        both the stage-level store use inside workers and the job-level
        short-circuit at submission time.
    workers:
        Embedded worker threads draining the queue from inside this
        process.  ``0`` is valid and makes the service a pure front-end
        — submissions queue up for external ``repro worker`` processes.
    timeout:
        Per-job wall-clock budget in seconds for the embedded workers
        (process-backend jobs are killed on expiry).
    backend:
        Fleet backend the embedded workers execute on (``"process"``
        default).
    num_poles, margin:
        Defaults for specs that omit them.
    queue_config:
        :class:`~repro.queue.QueueConfig` — lease, heartbeat, poll,
        retry, and rate-limit knobs (``REPRO_QUEUE_*``).
    queue_path:
        Queue database file; overrides ``queue_config.path``.  Defaults
        to ``queue.sqlite3`` next to the result store.
    """

    def __init__(
        self,
        *,
        config: Optional[RunConfig] = None,
        workers: int = 2,
        timeout: Optional[float] = None,
        backend: str = "process",
        num_poles: int = 30,
        margin: float = 0.002,
        queue_config: Optional[QueueConfig] = None,
        queue_path: Optional[str] = None,
    ) -> None:
        ensure_choice(backend, "service backend", BATCH_BACKENDS)
        # Fail the service boot on a malformed REPRO_FAULTS plan rather
        # than discovering it deep inside a request handler.
        _faults_init_from_env()
        self.config = config if config is not None else RunConfig()
        self.workers = int(workers)
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if timeout is not None and timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self.backend = backend
        self.num_poles = ensure_positive_int(num_poles, "num_poles")
        self.margin = float(margin)
        self.queue_config = (
            queue_config if queue_config is not None else QueueConfig()
        )
        self.store: Optional[ResultStore] = (
            ResultStore.from_config(self.config)
            if self.config.cache != "off"
            else None
        )
        store_root = self.store.root if self.store is not None else None
        self.queue_path = (
            Path(queue_path)
            if queue_path is not None
            else self.queue_config.resolve_path(store_root)
        )
        self.queue = JobQueue(
            self.queue_path, max_attempts=self.queue_config.max_attempts
        )
        self.limiter = TokenBucketLimiter(
            self.queue_config.rate, self.queue_config.burst
        )
        self._shutdown = False
        self._unavailable = 0  # submissions refused because the queue was down
        self._embedded: List[Tuple[QueueWorker, threading.Thread]] = []
        for index in range(self.workers):
            worker = QueueWorker(
                self.queue_path,
                queue_config=self.queue_config,
                worker_id=f"embedded-{index + 1}-{uuid.uuid4().hex[:6]}",
                backend=self.backend,
                timeout=self.timeout,
            )
            thread = threading.Thread(
                target=worker.run,
                name=f"repro-worker-{index + 1}",
                daemon=True,
            )
            thread.start()
            self._embedded.append((worker, thread))

    # -- submission ---------------------------------------------------------

    def check_rate(self, client: str) -> Tuple[bool, float]:
        """Spend one submission token for ``client`` (HTTP 429 gate)."""
        return self.limiter.allow(client)

    def submit(
        self,
        spec: Mapping[str, Any],
        *,
        trace_id: Optional[str] = None,
    ) -> JobRow:
        """Validate and durably enqueue one job.

        Returns the stored row: status ``"queued"`` for fresh work, or
        ``"done"`` with ``cached=True`` when the job-level key was
        already in the store (the fast path the service exists for).

        ``trace_id`` is the client's ``X-Repro-Trace-Id``; it is
        sanitized (or generated when absent/invalid) and stamped on the
        job row so every layer downstream — queue, worker, pipeline
        stages — attaches its spans to one causal timeline.
        """
        if self._shutdown:
            raise RuntimeError("the job manager is shut down")
        submit_wall = time.time()
        job_id = uuid.uuid4().hex[:12]
        trace_id = _trace.ensure_trace_id(trace_id)
        parsed = parse_spec(
            spec,
            base_config=self.config,
            num_poles=self.num_poles,
            margin=self.margin,
            job_id=job_id,
        )

        # The short-circuit honors the *effective* config: a submission
        # that opts out (`"config": {"cache": "off"}`) must recompute,
        # mirroring the write path in the workers.
        cached_payload: Optional[dict] = None
        lookup_elapsed = 0.0
        if (
            parsed.key is not None
            and self.store is not None
            and parsed.config.cache in ("read", "readwrite")
        ):
            lookup_t0 = time.perf_counter()
            cached_payload = self.store.get(parsed.key)
            lookup_elapsed = time.perf_counter() - lookup_t0

        try:
            row = self.queue.enqueue(
                job_id=job_id,
                task=parsed.task,
                name=parsed.name,
                kind=parsed.kind,
                # The resolved spec bakes in the effective config and
                # parameters, so any worker reproduces this exact
                # computation no matter how it was booted.
                spec=parsed.resolved_spec(),
                key=parsed.key,
                cached_result=cached_payload,
                trace_id=trace_id,
            )
        except sqlite3.Error as exc:
            # Degraded mode: the durable queue is unreachable even after
            # the DB layer's bounded retries.  Writes fail fast with a
            # retryable signal; reads (job lookups, stored results)
            # keep serving from whatever still works.
            self._unavailable += 1
            _LOG.error("submit refused, queue unavailable: %s", exc)
            raise ServiceUnavailable(
                f"job queue unavailable: {exc}"
            ) from exc

        if cached_payload is not None:
            # A cache hit completes at submission — no worker will ever
            # write this trace, so the front tier records the whole
            # (sub-millisecond) timeline itself.
            self._record_cached_trace(
                row, submit_wall=submit_wall, lookup_elapsed=lookup_elapsed
            )
        return row

    def _record_cached_trace(
        self, row: JobRow, *, submit_wall: float, lookup_elapsed: float
    ) -> None:
        if row.trace_id is None:
            return
        spans = [
            _trace.synthetic_span(
                trace_id=row.trace_id,
                span_id=row.id,
                parent_id=None,
                name="job",
                start=submit_wall,
                duration=max(time.time() - submit_wall, lookup_elapsed),
                attributes={
                    "job_id": row.id,
                    "task": row.task,
                    "state": "done",
                    "cached": True,
                    "attempts": 0,
                },
            ),
            _trace.synthetic_span(
                trace_id=row.trace_id,
                span_id=f"{row.id}-lookup",
                parent_id=row.id,
                name="store.get",
                start=submit_wall,
                duration=lookup_elapsed,
                attributes={"hit": True},
            ),
        ]
        try:
            self.queue.record_spans(spans, job_id=row.id)
        except sqlite3.Error as exc:  # tracing must never fail a submit
            _LOG.warning(
                "could not persist trace for cached job %s: %s", row.id, exc
            )

    # -- inspection ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRow]:
        """Look up one job row by id."""
        return self.queue.get(job_id)

    def events(
        self, job_id: str, *, since: int = 0, timeout: float = 30.0
    ) -> Optional[JobRow]:
        """Long-poll one job for a state transition past ``since``.

        Returns the fresh row as soon as its version exceeds ``since``
        (or immediately when the job is already terminal), the unchanged
        row at timeout, or ``None`` for an unknown id.
        """
        return self.queue.wait_for_version(
            job_id,
            since=since,
            timeout=timeout,
            poll=min(0.1, self.queue_config.poll_seconds),
        )

    def trace(self, job_id: str) -> Optional[dict]:
        """The span tree of one job (``GET /v1/jobs/<id>/trace``).

        Returns ``None`` for an unknown job.  A known job whose spans
        were not persisted yet (still queued/running, or tracing off)
        yields an empty tree rather than an error — the trace appears
        as the attempts complete.
        """
        row = self.queue.get(job_id)
        if row is None:
            return None
        try:
            # Scoped to the job, not the trace id: a client may reuse
            # one X-Repro-Trace-Id across submissions, and this
            # endpoint promises a single tree for *this* job.
            spans = self.queue.trace_spans(job_id=job_id)
        except sqlite3.Error:
            spans = []  # traces are best-effort while the queue degrades
        return {
            "job_id": row.id,
            "trace_id": row.trace_id,
            "status": row.state,
            "span_count": len(spans),
            "spans": spans,
            "tree": _trace.build_tree(spans),
        }

    def result_payload(self, key: str) -> Optional[dict]:
        """Fetch a raw store payload (``GET /v1/results/<key>``)."""
        if self.store is None:
            return None
        try:
            return self.store.get(key)
        except ValueError:
            return None

    def health(self) -> dict:
        """Live per-subsystem health (``GET /healthz``).

        ``"ok"`` when every subsystem answers its probe; ``"degraded"``
        when any does not.  Degraded is still HTTP 200 — the process is
        up and reads may serve — the *body* tells operators what broke.
        """
        subsystems: Dict[str, dict] = {}
        try:
            self.queue.probe()
            subsystems["queue"] = {"status": "ok"}
        except sqlite3.Error as exc:
            subsystems["queue"] = {
                "status": "failing",
                "error": f"{type(exc).__name__}: {exc}",
            }
        if self.store is not None:
            store_health = self.store.probe()
            subsystems["store"] = {
                "status": store_health["status"],
                "error": store_health["last_error"],
            }
        else:
            subsystems["store"] = {"status": "off"}
        degraded = any(
            detail["status"] == "failing" for detail in subsystems.values()
        )
        return {
            "status": "degraded" if degraded else "ok",
            "subsystems": subsystems,
        }

    def latency_stats(self) -> dict:
        """Latency histograms for ``GET /v1/stats``.

        ``endpoints`` — request-handling latency per HTTP endpoint,
        recorded live by the handler into the process registry.
        ``tasks`` — per-task ``queue_wait`` (submit → claim) and
        ``execution`` (claim → finish) histograms rebuilt from the
        durable queue timestamps, so externally executed jobs are
        included; cached submissions (inserted already done) are
        excluded from both and reported as a count instead.
        """
        endpoints: Dict[str, dict] = {}
        registry_state = _obs_metrics().to_dict()
        for name, payload in registry_state["timings"].items():
            if name.startswith("http."):
                endpoints[name[len("http."):]] = payload

        tasks: Dict[str, dict] = {}
        cached_excluded = 0
        try:
            samples = self.queue.latency_samples()
        except sqlite3.Error:
            samples = []  # latency is best-effort while the queue is down
        histograms: Dict[Tuple[str, str], Histogram] = {}
        for sample in samples:
            if sample["cached"]:
                cached_excluded += 1
                continue
            for phase in ("queue_wait", "execution"):
                value = sample[phase]
                if value is None:
                    continue
                slot = histograms.setdefault(
                    (sample["task"], phase), Histogram()
                )
                slot.observe(value)
        for (task, phase), hist in histograms.items():
            tasks.setdefault(task, {})[phase] = hist.to_dict()
        return {
            "endpoints": endpoints,
            "tasks": tasks,
            "cached_submissions_excluded": cached_excluded,
        }

    def stats(self) -> dict:
        """Aggregate service statistics (``GET /v1/stats``)."""
        queue_stats = self.queue.stats()
        depth: Dict[str, int] = queue_stats["depth"]
        store_stats = self.store.stats() if self.store is not None else None
        return {
            "workers": self.workers,
            "backend": self.backend,
            "timeout": self.timeout,
            "cache": self.config.cache,
            "jobs": {"total": queue_stats["total"], **depth},
            "cached_submissions": queue_stats["cached"],
            "completed": queue_stats["completed"],
            "queue": {
                "path": queue_stats["path"],
                "depth": depth,
                "max_attempts": self.queue_config.max_attempts,
                "lease_seconds": self.queue_config.lease_seconds,
                "rate": self.queue_config.rate,
            },
            "tasks_completed": queue_stats["tasks_completed"],
            "queue_workers": queue_stats["workers"],
            "latency": self.latency_stats(),
            "store": store_stats,
            "reliability": {
                "queue_retries": queue_stats["counters"],
                "store_retries": (
                    store_stats["counters"] if store_stats is not None else None
                ),
                "submissions_refused_unavailable": self._unavailable,
            },
        }

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and drain the embedded workers."""
        self._shutdown = True
        for worker, _thread in self._embedded:
            worker.request_stop()
        if wait:
            for _worker, thread in self._embedded:
                thread.join(timeout=30.0)
        self.queue.close()
