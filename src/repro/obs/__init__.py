"""Observability: stage metrics, latency histograms, and profiling.

The paper's headline claim is *speed* — parallel Hamiltonian-based
passivity verification — so this package is the layer that turns
"should be faster" into a measurement.  Three pieces:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of counters, gauges, timers, and fixed-bucket latency histograms
  with p50/p90/p99 summaries.  Stdlib-only, thread-safe, and zero
  overhead when unread: instrumented code records a float under a
  lock; nothing is aggregated until someone asks.
* :mod:`repro.obs.profiler` — a thin :mod:`cProfile` harness emitting
  top-N hot-function reports as plain JSON-serializable dicts
  (``repro bench --profile``, ``repro profile <subcommand...>``).
* :mod:`repro.obs.benchstage` — the named bench stages the CLI's
  ``repro bench`` command runs (eigensweep, vector fit, enforcement),
  shared with the profiling harness.
* :mod:`repro.obs.trace` — a zero-dependency span tracer with explicit
  cross-process context propagation: the per-job causal timeline behind
  ``GET /v1/jobs/<id>/trace`` and ``repro trace <job-id>``.

Every subsystem that does interesting work records into the process
registry (:func:`get_registry`): the eigensweep scheduler, vector
fitting, enforcement iterations, store reads/writes, queue claim/ack,
worker job execution, and the HTTP service's request handling.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.profiler import profile_call, profile_to_dict
from repro.obs.trace import (
    Span,
    TraceContext,
    build_tree,
    ensure_trace_id,
    render_waterfall,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "build_tree",
    "ensure_trace_id",
    "get_registry",
    "profile_call",
    "profile_to_dict",
    "render_waterfall",
    "reset_registry",
]
