"""Zero-dependency distributed tracing for the repro pipeline.

A *trace* is the causal timeline of one job: the HTTP submission, the
queue wait, the worker attempt(s), and every instrumented pipeline layer
underneath (``Macromodel`` stages, eigensweep shard dispatch, store
get/put, vector-fitting LS stages, per-iteration passivity enforcement,
queue claim/ack).  Each step is a *span* — trace ID + span ID + parent
ID, a wall-clock start, a monotonic duration, free-form attributes, and
a status.

The design mirrors :mod:`repro.obs.metrics`: stdlib only, a process-local
context, and a near-zero-cost disabled path.  Spans are recorded **only**
while a trace context is active (:func:`activate`); plain library calls
pay a single :class:`contextvars.ContextVar` lookup and nothing else, so
instrumentation can default on in the service without regressing the
tracked eigensweep baseline.

Cross-process propagation is explicit and serializable: the service
stamps a ``trace_id`` on ``POST /v1/jobs`` (honoring an inbound
``X-Repro-Trace-Id`` header), the queue persists it on the job row,
``repro worker`` restores it as the root context of the attempt, and
:class:`~repro.batch.runner.BatchRunner` ships a :class:`TraceContext`
dict into the child process, whose finished spans ride back on
``JobResult.spans``.

Environment (strict ``REPRO_*`` parsing; malformed values raise
:class:`~repro.core.config.ConfigError` naming the variable):

``REPRO_TRACE``
    Master switch, ``on`` (default) or ``off``.  When off,
    :func:`activate` installs nothing and every span is a no-op.
``REPRO_TRACE_RING``
    Completed traces retained in the queue database's bounded ring
    (default 256, minimum 1).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENV_TRACE",
    "ENV_TRACE_RING",
    "TRACE_ENV_VARS",
    "DEFAULT_TRACE_RING",
    "Span",
    "TraceContext",
    "activate",
    "build_tree",
    "current",
    "current_ids",
    "ensure_trace_id",
    "new_span_id",
    "new_trace_id",
    "record_fault",
    "record_span",
    "render_waterfall",
    "ring_from_env",
    "span",
    "synthetic_span",
    "tracing_enabled",
]

ENV_TRACE = "REPRO_TRACE"
ENV_TRACE_RING = "REPRO_TRACE_RING"

#: Every ``REPRO_TRACE_*`` variable the tracer reads — the docs
#: anti-drift test walks this tuple.
TRACE_ENV_VARS = (ENV_TRACE, ENV_TRACE_RING)

DEFAULT_TRACE_RING = 256

#: Inbound ``X-Repro-Trace-Id`` values must look like an ID, not a log
#: injection vector: hex/alnum plus dashes, 8–64 chars.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9-]{8,64}$")

_COUNTER_LOCK = threading.Lock()
_COUNTER = 0


def _config_error(message: str):
    from repro.core.config import ConfigError

    return ConfigError(message)


def tracing_enabled() -> bool:
    """``REPRO_TRACE`` master switch (default on); strict parse."""
    raw = os.environ.get(ENV_TRACE)
    if raw is None:
        return True
    value = raw.strip().lower()
    if value in ("on", "1", "true", "yes"):
        return True
    if value in ("off", "0", "false", "no"):
        return False
    raise _config_error(
        f"invalid {ENV_TRACE}={raw!r}: expected on/off"
    )


def ring_from_env() -> int:
    """``REPRO_TRACE_RING`` — traces retained durably; strict parse."""
    raw = os.environ.get(ENV_TRACE_RING)
    if raw is None:
        return DEFAULT_TRACE_RING
    try:
        value = int(raw)
    except ValueError as exc:
        raise _config_error(
            f"invalid {ENV_TRACE_RING}={raw!r}: {exc}"
        ) from None
    if value < 1:
        raise _config_error(
            f"invalid {ENV_TRACE_RING}={raw!r}: must be >= 1"
        )
    return value


def new_trace_id() -> str:
    """A fresh 32-hex-char trace ID."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-char span ID, unique across processes."""
    global _COUNTER
    with _COUNTER_LOCK:
        _COUNTER += 1
        counter = _COUNTER
    return f"{os.urandom(6).hex()}{counter & 0xFFFF:04x}"


def ensure_trace_id(candidate: Optional[str]) -> str:
    """Sanitize a client-supplied trace ID, or mint one.

    Accepts 8–64 chars of ``[A-Za-z0-9-]``; anything else (including
    ``None``) yields a freshly generated ID so a hostile header can
    never poison logs or the trace store.
    """
    if candidate and _TRACE_ID_RE.match(candidate):
        return candidate
    return new_trace_id()


@dataclass(frozen=True)
class TraceContext:
    """The serializable link between processes: which trace, and which
    span new children should hang under."""

    trace_id: str
    span_id: str
    job_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            job_id=payload.get("job_id"),
        )


class Span:
    """An open span handle.  Closed spans serialize via :meth:`to_dict`."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "status",
        "attributes",
        "_perf0",
        "_backdated",
    )

    def __init__(
        self,
        *,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        now = time.time()
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = now if start is None else float(start)
        # Duration is monotonic-derived; a backdated start (e.g. the
        # worker attempt opening at claim time) extends it by the
        # wall-clock gap so children always fit inside the parent.
        self._backdated = max(0.0, now - self.start)
        self._perf0 = time.perf_counter()
        self.duration = 0.0
        self.status = "ok"
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def annotate(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_fault(self, point: str, kind: str) -> None:
        self.attributes.setdefault("faults", []).append(
            {"point": point, "kind": kind}
        )

    def finish(self, *, status: Optional[str] = None) -> None:
        self.duration = (
            time.perf_counter() - self._perf0
        ) + self._backdated
        if status is not None:
            self.status = status

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": self.attributes,
        }


class _NullSpan:
    """Recorded nowhere; handed out when no trace is active."""

    __slots__ = ()
    context = None

    def annotate(self, key: str, value: Any) -> None:
        pass

    def add_fault(self, point: str, kind: str) -> None:
        pass


_NULL_SPAN = _NullSpan()


@dataclass
class _ActiveTrace:
    trace_id: str
    parent_id: str
    job_id: Optional[str]
    sink: List[Dict[str, Any]]
    current_span: Optional[Span] = None


_STATE: ContextVar[Optional[_ActiveTrace]] = ContextVar(
    "repro_trace_state", default=None
)


def current() -> Optional[Span]:
    """The innermost open span, or ``None`` outside any trace."""
    state = _STATE.get()
    return state.current_span if state is not None else None


def current_ids() -> Tuple[Optional[str], Optional[str], Optional[str]]:
    """``(trace_id, span_id, job_id)`` of the active context — the
    correlation fields stamped onto every log record."""
    state = _STATE.get()
    if state is None:
        return (None, None, None)
    span_id = (
        state.current_span.span_id
        if state.current_span is not None
        else state.parent_id
    )
    return (state.trace_id, span_id, state.job_id)


@contextmanager
def activate(
    context: TraceContext,
    sink: Optional[List[Dict[str, Any]]] = None,
    *,
    job_id: Optional[str] = None,
) -> Iterator[List[Dict[str, Any]]]:
    """Install ``context`` as the root of this execution; finished spans
    accumulate in ``sink`` (created when omitted, yielded either way).

    Honors the ``REPRO_TRACE`` master switch: when off, nothing is
    installed and every nested :func:`span` is a no-op.
    """
    collected: List[Dict[str, Any]] = [] if sink is None else sink
    if not tracing_enabled():
        yield collected
        return
    state = _ActiveTrace(
        trace_id=context.trace_id,
        parent_id=context.span_id,
        job_id=job_id if job_id is not None else context.job_id,
        sink=collected,
    )
    token = _STATE.set(state)
    try:
        yield collected
    finally:
        _STATE.reset(token)


@contextmanager
def span(name: str, *, start: Optional[float] = None, **attributes: Any):
    """Open a child span of the current context; no-op when inactive.

    ``start`` backdates the wall-clock opening (the duration grows by the
    gap) so work that began before the handle could be created — e.g. a
    queue claim — still nests consistently.
    """
    state = _STATE.get()
    if state is None:
        yield _NULL_SPAN
        return
    parent = (
        state.current_span.span_id
        if state.current_span is not None
        else state.parent_id
    )
    handle = Span(
        trace_id=state.trace_id,
        span_id=new_span_id(),
        parent_id=parent,
        name=name,
        start=start,
        attributes=attributes or None,
    )
    previous = state.current_span
    state.current_span = handle
    try:
        yield handle
        handle.finish()
    except BaseException as exc:
        handle.finish(status="error")
        handle.attributes.setdefault("error", repr(exc))
        raise
    finally:
        state.current_span = previous
        state.sink.append(handle.to_dict())


def record_span(
    name: str,
    *,
    start: float,
    duration: float,
    attributes: Optional[Dict[str, Any]] = None,
    status: str = "ok",
) -> None:
    """Append an already-measured span under the current context.

    Used for work whose timing was captured elsewhere — per-shard
    eigensweep outcomes shipped back from pool workers, the queue claim
    that preceded the attempt span.  No-op when no trace is active.
    """
    state = _STATE.get()
    if state is None:
        return
    parent = (
        state.current_span.span_id
        if state.current_span is not None
        else state.parent_id
    )
    state.sink.append(
        {
            "trace_id": state.trace_id,
            "span_id": new_span_id(),
            "parent_id": parent,
            "name": name,
            "start": float(start),
            "duration": max(0.0, float(duration)),
            "status": status,
            "attributes": dict(attributes) if attributes else {},
        }
    )


def record_fault(point: str, kind: str) -> None:
    """Attach a fault-injection event to the innermost open span.

    Called by :mod:`repro.faults` whenever a plan fires, so chaos-suite
    jobs carry their injected faults as span attributes.
    """
    handle = current()
    if handle is not None:
        handle.add_fault(point, kind)


def synthetic_span(
    *,
    trace_id: str,
    span_id: str,
    parent_id: Optional[str],
    name: str,
    start: float,
    duration: float,
    status: str = "ok",
    attributes: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A fully-specified span dict, for timeline entries reconstructed
    from persisted timestamps (the ``job`` root, ``queue.wait``)."""
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": float(start),
        "duration": max(0.0, float(duration)),
        "status": status,
        "attributes": dict(attributes) if attributes else {},
    }


# ---------------------------------------------------------------------------
# Tree assembly and rendering
# ---------------------------------------------------------------------------


def build_tree(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat span dicts into ``children`` lists.

    Returns the roots (spans whose parent is absent from the set),
    children sorted by start time.  Input dicts are not mutated.
    """
    nodes = {s["span_id"]: dict(s, children=[]) for s in spans}
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = node.get("parent_id")
        if parent and parent in nodes and parent != node["span_id"]:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    def _sort(items: List[Dict[str, Any]]) -> None:
        items.sort(key=lambda n: (n["start"], n["name"]))
        for item in items:
            _sort(item["children"])
    _sort(roots)
    return roots


def render_waterfall(
    spans: List[Dict[str, Any]], *, width: int = 40
) -> str:
    """ASCII waterfall of a span tree with per-span % of wall time.

    One line per span: indented name, a ``#`` bar positioned inside the
    trace window, the duration, and the share of the root wall time.
    """
    roots = build_tree(spans)
    if not roots:
        return "(no spans recorded)"
    t0 = min(s["start"] for s in spans)
    t1 = max(s["start"] + s["duration"] for s in spans)
    window = max(t1 - t0, 1e-9)
    wall = max((r["duration"] for r in roots), default=window) or window
    name_width = min(
        44, max(len(n["name"]) + 2 * _depth_of(n, roots) for n in _walk(roots))
    )
    lines = [
        f"trace {spans[0]['trace_id']} · {len(spans)} spans ·"
        f" {window:.3f}s wall"
    ]
    for node, depth in _walk_depth(roots):
        offset = int(round((node["start"] - t0) / window * width))
        length = int(round(node["duration"] / window * width))
        offset = min(offset, width - 1)
        length = max(1, min(length, width - offset))
        bar = " " * offset + "#" * length + " " * (width - offset - length)
        label = ("  " * depth + node["name"])[:name_width].ljust(name_width)
        pct = node["duration"] / wall * 100.0
        flag = "" if node["status"] == "ok" else f"  [{node['status']}]"
        lines.append(
            f"{label} |{bar}| {node['duration']:8.3f}s {pct:5.1f}%{flag}"
        )
    return "\n".join(lines)


def _walk(roots: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
    for node, _ in _walk_depth(roots):
        yield node


def _walk_depth(
    roots: List[Dict[str, Any]], depth: int = 0
) -> Iterator[Tuple[Dict[str, Any], int]]:
    for node in roots:
        yield node, depth
        yield from _walk_depth(node["children"], depth + 1)


def _depth_of(
    node: Dict[str, Any], roots: List[Dict[str, Any]]
) -> int:
    for candidate, depth in _walk_depth(roots):
        if candidate is node:
            return depth
    return 0


def spans_to_json(spans: List[Dict[str, Any]]) -> str:
    """Canonical single-line JSON encoding (persistence, transport)."""
    return json.dumps(spans, sort_keys=True, default=str)
