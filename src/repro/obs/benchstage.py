"""Named bench stages for ``repro bench [--profile]``.

Each stage is a zero-argument closure over a seeded synthetic model:
deterministic inputs, so two runs of ``repro bench`` measure the same
computation.  ``repro bench`` times every requested stage (optionally
under :func:`repro.obs.profiler.profile_call`) and emits one JSON
document — timings, the stage's solver work counters where they exist,
and the top-N hot functions when profiling.

These stages intentionally mirror the tracked ``benchmarks/run.py``
pipeline stages (eigensweep == characterization) but live inside the
package so the installed CLI can profile them from any directory
without a repo checkout.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["BENCH_STAGES", "DEFAULT_STAGES", "run_bench_stages"]


def _build_model(scale: float):
    from repro.synth.generator import random_macromodel

    num_poles = max(8, int(40 * scale * 10))
    return random_macromodel(num_poles, 4, seed=777, sigma_target=1.05)


def _stage_eigensweep(scale: float, threads: int) -> Tuple[dict, Optional[dict]]:
    """Hamiltonian characterization — the paper's parallel eigensweep."""
    from repro.core.options import SolverOptions
    from repro.passivity.characterization import characterize_passivity

    model = _build_model(scale)
    report = characterize_passivity(
        model, num_threads=threads, options=SolverOptions()
    )
    work = dict(report.solve.work) if report.solve is not None else None
    return {"passive": bool(report.passive), "bands": len(report.bands)}, work


def _stage_vector_fit(scale: float, threads: int) -> Tuple[dict, Optional[dict]]:
    """Vector fitting of the reference model's frequency response."""
    import numpy as np

    from repro.vectfit.vector_fitting import vector_fit

    model = _build_model(scale)
    freqs = np.linspace(0.01, 16.0, 300)
    samples = model.frequency_response(freqs)
    fit = vector_fit(freqs, samples, num_poles=model.num_poles)
    return {
        "rms_error": float(fit.rms_error),
        "iterations": int(fit.iterations),
    }, None


def _stage_enforcement(scale: float, threads: int) -> Tuple[dict, Optional[dict]]:
    """Iterative passivity enforcement on the reference model."""
    from repro.core.options import SolverOptions
    from repro.passivity.enforcement import enforce_passivity

    model = _build_model(scale)
    result = enforce_passivity(
        model, num_threads=threads, options=SolverOptions()
    )
    work: Dict[str, int] = {}
    for rep in result.reports:
        if rep.solve is not None:
            for key, value in rep.solve.work.items():
                work[key] = work.get(key, 0) + int(value)
    return {
        "passive": bool(result.passive),
        "iterations": int(result.iterations),
    }, work or None


#: Registry of stage name -> callable(scale, threads) -> (extra, work).
BENCH_STAGES: Dict[str, Callable[[float, int], Tuple[dict, Optional[dict]]]] = {
    "eigensweep": _stage_eigensweep,
    "vector_fit": _stage_vector_fit,
    "enforcement": _stage_enforcement,
}

#: Stages ``repro bench`` runs when none are named.
DEFAULT_STAGES: Tuple[str, ...] = ("eigensweep", "vector_fit", "enforcement")


def run_bench_stages(
    stages: Sequence[str],
    *,
    scale: float = 0.05,
    threads: int = 2,
    profile: bool = False,
    profile_sort: str = "cumtime",
    profile_top: int = 20,
) -> List[dict]:
    """Run the named stages, returning one record per stage.

    Each record carries ``name``, ``seconds``, ``extra`` (stage-shaped
    results), ``work`` (solver work counters or ``None``), the process
    registry's deltas for the stage under ``metrics``, and — when
    ``profile`` is set — a ``profile`` top-N hot-function report.
    """
    from repro.obs.metrics import get_registry
    from repro.obs.profiler import profile_call

    records: List[dict] = []
    for name in stages:
        try:
            fn = BENCH_STAGES[name]
        except KeyError:
            raise ValueError(
                f"unknown bench stage {name!r};"
                f" expected one of {sorted(BENCH_STAGES)}"
            ) from None
        # Snapshot-by-difference: the process registry keeps running,
        # the stage record only reports what this stage added.
        before = get_registry().snapshot()["counters"]
        started = time.perf_counter()
        if profile:
            (extra, work), report = profile_call(
                fn, scale, threads, top_n=profile_top, sort=profile_sort
            )
        else:
            extra, work = fn(scale, threads)
            report = None
        seconds = time.perf_counter() - started
        after = get_registry().snapshot()["counters"]
        deltas = {
            key: after[key] - before.get(key, 0)
            for key in after
            if after[key] != before.get(key, 0)
        }
        record = {
            "name": name,
            "seconds": seconds,
            "extra": extra,
            "work": work,
            "metrics": {"counters": deltas},
        }
        if report is not None:
            record["profile"] = report
        records.append(record)
    return records
