"""A thin cProfile harness with JSON-friendly top-N reports.

``repro bench --profile`` wraps each bench stage in one of these;
``repro profile <subcommand...>`` wraps a whole CLI invocation.  The
output is a plain dict (sortable, serializable, diffable in CI
artifacts) instead of pstats' human-only table.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, Tuple

__all__ = ["PROFILE_SORTS", "profile_call", "profile_to_dict"]

#: Sort orders ``--profile-sort`` accepts, mapped to pstats keys.
PROFILE_SORTS: Tuple[str, ...] = ("cumtime", "tottime", "ncalls")


def profile_to_dict(
    profile: cProfile.Profile, *, top_n: int = 20, sort: str = "cumtime"
) -> dict:
    """Convert a finished profile into a top-N hot-function report.

    Each entry carries the function's location, primitive/total call
    counts, and tottime/cumtime in seconds — everything the pstats
    table shows, as data.
    """
    if sort not in PROFILE_SORTS:
        raise ValueError(
            f"sort must be one of {PROFILE_SORTS}, got {sort!r}"
        )
    stats = pstats.Stats(profile)
    rows = []
    for (path, line, name), (cc, nc, tottime, cumtime, _callers) in (
        stats.stats.items()
    ):
        rows.append(
            {
                "function": name,
                "file": path,
                "line": line,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tottime,
                "cumtime": cumtime,
            }
        )
    key = {"cumtime": "cumtime", "tottime": "tottime", "ncalls": "ncalls"}[sort]
    rows.sort(key=lambda row: row[key], reverse=True)
    return {
        "sort": sort,
        "total_functions": len(rows),
        "total_tottime": sum(row["tottime"] for row in rows),
        "top": rows[:top_n],
    }


def profile_call(
    fn: Callable[..., Any],
    *args,
    top_n: int = 20,
    sort: str = "cumtime",
    **kwargs,
) -> Tuple[Any, dict]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is
    :func:`profile_to_dict` output.  The profiler is scoped to this
    call only — nothing leaks into the caller's interpreter state.
    """
    profile = cProfile.Profile()
    result = profile.runcall(fn, *args, **kwargs)
    return result, profile_to_dict(profile, top_n=top_n, sort=sort)
