"""Process-local metrics: counters, gauges, timers, latency histograms.

Design constraints, in order:

1. **No dependencies.**  Stdlib only — the registry must be importable
   from the innermost solver loop and from the HTTP handler alike.
2. **Zero overhead when unread.**  Recording is a dict lookup and a
   float add under one lock; quantiles, summaries, and text rendering
   are computed only when a reader asks (``snapshot()``, ``/v1/stats``).
3. **Thread-safe.**  The service handler threads, embedded queue
   workers, and the eigensweep scheduler's worker threads all record
   into one process registry concurrently.

Histograms are fixed-bucket (upper-bound edges, exponential by
default, spanning 100 µs to ~100 s for latencies).  Quantiles are
estimated by linear interpolation inside the owning bucket — the same
scheme Prometheus' ``histogram_quantile`` uses — which keeps the
memory footprint constant regardless of observation count.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
]

#: Default latency bucket upper bounds in seconds: 100 µs .. ~100 s,
#: roughly half-decade spacing.  Fine enough to separate a cache hit
#: from a solve, coarse enough to stay 14 floats forever.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    100.0,
)

#: The quantiles every summary reports.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class Histogram:
    """A fixed-bucket histogram with quantile estimation.

    Buckets are defined by their *upper bounds* (sorted, strictly
    increasing); an implicit overflow bucket catches everything above
    the last edge.  Observations accumulate count and sum exactly, so
    the mean is exact even though quantiles are bucket-interpolated.
    """

    __slots__ = ("_edges", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"bucket edges must be strictly increasing, got {edges}"
            )
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (seconds, bytes, whatever is consistent)."""
        value = float(value)
        index = bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram's state (edges must match)."""
        if other._edges != self._edges:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            lo, hi = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if lo is not None and (self._min is None or lo < self._min):
                self._min = lo
            if hi is not None and (self._max is None or hi > self._max):
                self._max = hi

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0 < q <= 1) by bucket interpolation.

        Returns ``None`` when the histogram is empty.  The estimate is
        clamped by the exact observed min/max, so a histogram with one
        observation reports that observation at every quantile instead
        of a bucket edge.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return None
            counts = list(self._counts)
            total = self._count
            lo, hi = self._min, self._max
        rank = q * total
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = 0.0 if index == 0 else self._edges[index - 1]
                if index < len(self._edges):
                    upper = self._edges[index]
                else:
                    # Overflow bucket: the exact max is the only honest
                    # upper bound we have.
                    upper = hi if hi is not None else lower
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, lo), hi)
            cumulative += bucket_count
        return hi  # pragma: no cover — rank <= total always lands above

    def summary(self) -> dict:
        """Machine-readable state: count, sum, min/max, p50/p90/p99."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        doc = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": lo,
            "max": hi,
        }
        for q in SUMMARY_QUANTILES:
            doc[f"p{int(q * 100)}"] = self.quantile(q)
        return doc

    def to_dict(self) -> dict:
        """Summary plus the raw cumulative buckets (Prometheus-shaped)."""
        doc = self.summary()
        with self._lock:
            counts = list(self._counts)
        cumulative, buckets = 0, []
        for edge, bucket_count in zip(self._edges, counts):
            cumulative += bucket_count
            buckets.append({"le": edge, "count": cumulative})
        buckets.append({"le": "+Inf", "count": cumulative + counts[-1]})
        doc["buckets"] = buckets
        return doc


class MetricsRegistry:
    """A named collection of counters, gauges, timers, and histograms.

    One registry per process (:func:`get_registry`) carries service and
    worker traffic; :class:`~repro.api.session.Macromodel` additionally
    owns a private registry so per-session stage timings survive into
    :class:`~repro.batch.runner.JobResult` without cross-job bleed.

    Metric names are dotted lowercase (``store.get``, ``queue.claim``);
    timers and histograms share the histogram machinery — a timer is a
    histogram observed in seconds plus a convenience context manager.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self._buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Increment a monotonically increasing counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def histogram(self, name: str) -> Histogram:
        """Get (or lazily create) the named histogram."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(self._buckets)
            return hist

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name).observe(value)

    def timer(self, name: str) -> "_Timer":
        """Context manager timing a block into histogram ``name``.

        >>> registry = MetricsRegistry()
        >>> with registry.timer("stage.fit"):
        ...     pass
        >>> registry.histogram("stage.fit").count
        1
        """
        return _Timer(self, name)

    def time_call(self, name: str, fn: Callable, *args, **kwargs):
        """Call ``fn`` timing it into histogram ``name``; return its result."""
        started = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- reading ------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (counters add, gauges last-wins,
        histograms merge bucket-wise)."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = dict(other._histograms)
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges)
        for name, hist in histograms.items():
            self.histogram(name).merge(hist)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Accumulate a ``snapshot()``-shaped dict (counters and timer
        count/sum only — bucket detail does not survive serialization,
        so merged quantiles are not recomputed).

        This is how :class:`~repro.batch.runner.FleetReport` aggregates
        per-job metrics that crossed a process boundary as JSON.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.count(name, int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name, value)

    def snapshot(self) -> dict:
        """Plain-dict view: counters, gauges, histogram summaries."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": counters,
            "gauges": gauges,
            "timings": {
                name: hist.summary() for name, hist in sorted(histograms.items())
            },
        }

    def to_dict(self) -> dict:
        """Snapshot with full bucket detail on every histogram."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": counters,
            "gauges": gauges,
            "timings": {
                name: hist.to_dict() for name, hist in sorted(histograms.items())
            },
        }

    def render_text(self, prefix: str = "repro") -> str:
        """Prometheus-style text exposition (``GET /v1/metrics``).

        Names are sanitized to ``[a-z0-9_]``; histograms emit
        ``_bucket``/``_sum``/``_count`` series with ``le`` labels.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: List[str] = []

        def _name(raw: str) -> str:
            cleaned = "".join(
                ch if ch.isalnum() else "_" for ch in raw.lower()
            )
            return f"{prefix}_{cleaned}"

        for name in sorted(counters):
            metric = _name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counters[name]}")
        for name in sorted(gauges):
            metric = _name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauges[name]}")
        for name in sorted(histograms):
            metric = _name(name) + "_seconds"
            doc = histograms[name].to_dict()
            lines.append(f"# TYPE {metric} histogram")
            for bucket in doc["buckets"]:
                le = bucket["le"]
                le_text = "+Inf" if le == "+Inf" else repr(float(le))
                lines.append(
                    f'{metric}_bucket{{le="{le_text}"}} {bucket["count"]}'
                )
            lines.append(f"{metric}_sum {doc['sum']}")
            lines.append(f"{metric}_count {doc['count']}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every metric (tests and bench isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            names = sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )
        return iter(names)


class _Timer:
    """Context manager recording a block's wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: MetricsRegistry, name: str):
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(
            self._name, time.perf_counter() - self._started
        )


# -- the process registry ---------------------------------------------------

_PROCESS_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem records into."""
    return _PROCESS_REGISTRY


def reset_registry() -> None:
    """Clear the process registry (tests, bench stage isolation)."""
    _PROCESS_REGISTRY.reset()
